"""F4 — Figure 4: fault-tolerant soft-state registration.

Paper claims encoded in the figure and §4.3:

* redundant directories fed by the same registration streams converge
  to the same membership ("the redundant VO-A directories converge");
* a partition makes replica views diverge ("the VO-B directories cannot
  [converge] due to network partition") — and they re-converge after
  the heal;
* soft state tolerates message loss: "a single lost message does not
  cause irretrievable harm" — with TTL = k × interval, availability
  degrades gracefully with loss instead of collapsing.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from repro.giis.hierarchy import DatagramGrrpSender, make_registrant
from repro.net.links import LinkModel
from repro.testbed import GridTestbed
from repro.testbed.metrics import fmt_table


def build_replicated(seed=0, n_providers=6, loss=0.0, interval=10.0, ttl=30.0):
    """N providers streaming registrations to two replica directories."""
    tb = GridTestbed(seed=seed, default_link=LinkModel(latency=0.005, loss=loss))
    d1 = tb.add_giis("dir1", "o=Grid", site="side1", vo_name="VO")
    d2 = tb.add_giis("dir2", "o=Grid", site="side2", vo_name="VO")
    registrants = []
    for i in range(n_providers):
        host = f"p{i}"
        site = f"side{1 + i % 2}"
        node = tb.host(host, site=site)
        send = DatagramGrrpSender(node)
        registrant = make_registrant(
            tb.sim,
            f"ldap://{host}:2135/",
            f"hn={host}, o=Grid",
            send,
            interval=interval,
            ttl=ttl,
            name=host,
        )
        registrant.register_with("dir1")
        registrant.register_with("dir2")
        registrants.append(registrant)
    return tb, d1, d2, registrants


def membership(directory):
    return set(directory.backend.registry.active_urls())


def agreement(d1, d2):
    a, b = membership(d1), membership(d2)
    union = a | b
    return len(a & b) / len(union) if union else 1.0


def run_convergence_and_partition(seed=0):
    tb, d1, d2, registrants = build_replicated(seed=seed)
    rows = []

    tb.run(15.0)
    rows.append(("converged", tb.sim.now(), len(membership(d1)), len(membership(d2)), agreement(d1, d2)))
    assert agreement(d1, d2) == 1.0
    assert len(membership(d1)) == 6

    # partition: directories keep only their side's providers after TTL
    side1 = [h for h in tb.net.hosts() if tb.net.node(h).site == "side1"]
    side2 = [h for h in tb.net.hosts() if tb.net.node(h).site == "side2"]
    tb.net.partition(side1, side2)
    tb.run(60.0)
    div = agreement(d1, d2)
    rows.append(("partitioned", tb.sim.now(), len(membership(d1)), len(membership(d2)), div))
    assert div == 0.0  # fully divergent: no provider visible to both
    assert len(membership(d1)) == 3 and len(membership(d2)) == 3

    # heal: streams resume, replicas reconverge
    tb.net.heal()
    tb.run(30.0)
    rows.append(("healed", tb.sim.now(), len(membership(d1)), len(membership(d2)), agreement(d1, d2)))
    assert agreement(d1, d2) == 1.0
    for registrant in registrants:
        registrant.stop()
    return rows


def test_fig4_replicas_converge_diverge_reconverge(benchmark, report):
    rows = benchmark.pedantic(run_convergence_and_partition, rounds=1, iterations=1)
    report(
        "F4_softstate_convergence",
        "Figure 4: replicated directory membership under partition\n"
        + fmt_table(
            ["phase", "t (s)", "|dir1|", "|dir2|", "agreement"],
            rows,
        )
        + "\n\nClaim check: replicas converge (agreement 1.0), diverge under\n"
        "partition (0.0: disjoint fragment views), reconverge after heal.",
    )


def test_fig4_loss_tolerance_sweep(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """§4.3 ablation: availability vs datagram loss for TTL/interval ratios.

    A provider is 'available' when the directory currently lists it.
    With k = ttl/interval refreshes outstanding, k consecutive losses
    must occur before a live provider disappears, so availability
    degrades as ~loss^k, not linearly.
    """
    rows = []
    for k in (1, 3, 5):
        for loss in (0.0, 0.1, 0.3, 0.5):
            tb, d1, d2, registrants = build_replicated(
                seed=int(loss * 100) + k,
                n_providers=4,
                loss=loss,
                interval=10.0,
                ttl=10.0 * k,
            )
            # sample dir1's view every 5s over 400s of steady state:
            # availability = fraction of live providers currently listed
            samples = 0
            present = 0
            tb.run(10.0 * k)  # warm-up
            for _ in range(80):
                tb.run(5.0)
                samples += 4  # 4 live providers per sample
                present += len(membership(d1))
            availability = present / samples
            rows.append((k, loss, round(availability, 4)))
            for registrant in registrants:
                registrant.stop()

    report(
        "F4_loss_sweep",
        "Soft-state availability vs loss (ablation: ttl = k x interval)\n"
        + fmt_table(["k (ttl/interval)", "loss", "availability"], rows)
        + "\n\nClaim check: k=1 collapses under loss; k>=3 absorbs even 30-50%\n"
        "loss with high availability — 'a single lost message does not\n"
        "cause irretrievable harm'.",
    )
    table = {(k, loss): a for k, loss, a in rows}
    assert table[(1, 0.0)] > 0.99
    assert table[(3, 0.3)] > 0.9
    assert table[(5, 0.5)] > 0.9
    assert table[(1, 0.5)] < table[(3, 0.5)] <= table[(5, 0.5)]


def test_fig4_explicit_unregister_vs_expiry(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Polite leave (unregister message) is immediate; silent leave
    (crash) is detected within TTL — 'no reliable de-notify protocol
    message is required'."""
    tb, d1, d2, registrants = build_replicated(seed=9)
    tb.run(15.0)
    polite, silent = registrants[0], registrants[1]

    t0 = tb.sim.now()
    polite.deregister_from("dir1", notify=True)
    polite.deregister_from("dir2", notify=True)
    tb.run(1.0)
    polite_gone_after = tb.sim.now() - t0
    assert polite.service_url not in membership(d1)

    t0 = tb.sim.now()
    silent.stop()  # crash: no unregister sent
    while silent.service_url in membership(d1):
        tb.run(1.0)
    silent_gone_after = tb.sim.now() - t0

    report(
        "F4_unregister_vs_expiry",
        fmt_table(
            ["leave style", "detected after (s)"],
            [("explicit unregister", round(polite_gone_after, 2)),
             ("silent (soft-state expiry)", round(silent_gone_after, 2))],
        )
        + "\nClaim check: both paths clean up; expiry is bounded by the TTL.",
    )
    assert polite_gone_after <= 1.0
    assert silent_gone_after <= 35.0


def test_fig4_agreement_time_series(benchmark, report):
    """The full Figure 4 curve: replica agreement sampled over time
    through converge -> partition -> diverge -> heal -> reconverge."""

    def run():
        tb, d1, d2, registrants = build_replicated(seed=13)
        series = []

        def sample():
            series.append(
                (
                    round(tb.sim.now(), 1),
                    len(membership(d1)),
                    len(membership(d2)),
                    round(agreement(d1, d2), 3),
                )
            )

        side1 = [h for h in tb.net.hosts() if tb.net.node(h).site == "side1"]
        side2 = [h for h in tb.net.hosts() if tb.net.node(h).site == "side2"]
        events = {40.0: lambda: tb.net.partition(side1, side2), 120.0: tb.net.heal}
        t = 0.0
        while t <= 170.0:
            for when, action in events.items():
                if t - 5.0 < when <= t:
                    action()
            tb.run(t - tb.sim.now())
            sample()
            t += 5.0
        for registrant in registrants:
            registrant.stop()
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["t(s)  |dir1|  |dir2|  agreement  " + "-" * 10]
    for t, a, b, agr in series:
        bar = "#" * int(agr * 10)
        lines.append(f"{t:5.0f}  {a:6d}  {b:6d}  {agr:9.3f}  {bar}")
    report(
        "F4_agreement_series",
        "Figure 4 as a time series (partition at t=40, heal at t=120)\n"
        + "\n".join(lines),
    )
    by_time = {t: agr for t, _, _, agr in series}
    assert by_time[30.0] == 1.0  # converged before the cut
    assert by_time[115.0] == 0.0  # fully diverged before the heal
    assert by_time[170.0] == 1.0  # reconverged after
