"""Shared fixtures for the experiment harness.

Every benchmark prints a paper-shaped report table and also writes it to
``benchmarks/reports/<name>.txt`` so results survive pytest's output
capture.  EXPERIMENTS.md summarizes paper-claim vs. measured for each.
"""

import pathlib

import pytest

REPORTS = pathlib.Path(__file__).parent / "reports"


@pytest.fixture
def report():
    """report(name, text): print and persist one experiment report."""

    def emit(name: str, text: str) -> str:
        REPORTS.mkdir(exist_ok=True)
        path = REPORTS / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")
        return text

    return emit
