"""E16 — §10.3 provider dispatch: parallel fan-out and the coalescing cache.

A GRIS answering a broad query must consult every information provider
whose namespace intersects the search base.  Sequential dispatch pays
the *sum* of provider latencies; the bounded fan-out pool pays roughly
the *max*.  The cache overhaul adds single-flight coalescing: a stampede
of identical cold queries invokes each provider once, not once per
query.

Set ``E16_QUICK=1`` (the CI smoke mode) for fewer providers and shorter
stalls; the shape of the claims is asserted in both modes.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import os
import threading
import time

from repro.gris import FunctionProvider, GrisBackend
from repro.ldap.backend import RequestContext
from repro.ldap.dit import Scope
from repro.ldap.entry import Entry
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import SearchRequest
from repro.net.clock import WallClock
from repro.testbed.metrics import fmt_table

QUICK = bool(os.environ.get("E16_QUICK"))
N_PROVIDERS = 4 if QUICK else 8
PROVIDER_S = 0.05 if QUICK else 0.25  # per-provider stall
STAMPEDE = 4 if QUICK else 8  # concurrent identical cold queries


def make_gris(workers):
    gris = GrisBackend("o=G", clock=WallClock(), provider_workers=workers)
    gris.set_suffix_entry(Entry("o=G", objectclass="organization", o="G"))
    for i in range(N_PROVIDERS):
        def provide(i=i):
            time.sleep(PROVIDER_S)
            return [
                Entry(
                    f"hn=h{i}", objectclass="computer", hn=f"h{i}",
                    cpucount=str(i + 1),
                )
            ]

        gris.add_provider(
            FunctionProvider(
                f"host-{i}", provide, namespace=f"hn=h{i}", cache_ttl=300.0
            )
        )
    return gris


def broad_search(gris):
    req = SearchRequest(
        base="o=G", scope=Scope.SUBTREE, filter=parse_filter("(objectclass=*)")
    )
    started = time.perf_counter()
    out = gris.search(req, RequestContext())
    elapsed = time.perf_counter() - started
    assert len(out.entries) == N_PROVIDERS + 1  # suffix + one per provider
    return elapsed


def cold_and_warm(workers):
    """(cold_s, warm_s) for one broad query against a fresh GRIS."""
    gris = make_gris(workers)
    try:
        return broad_search(gris), broad_search(gris)
    finally:
        gris.shutdown()


def stampede():
    """K identical cold queries at once; returns per-provider invocations."""
    gris = make_gris(workers=N_PROVIDERS)
    try:
        results = []

        def query():
            results.append(broad_search(gris))

        started = time.perf_counter()
        threads = [threading.Thread(target=query) for _ in range(STAMPEDE)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        invocations = [p.invocations for p in gris.providers()]
        return invocations, int(gris.cache.stats.coalesced), elapsed
    finally:
        gris.shutdown()


def test_gris_fanout(benchmark, report):
    def run():
        seq_cold, seq_warm = cold_and_warm(workers=0)
        par_cold, par_warm = cold_and_warm(workers=N_PROVIDERS)
        invocations, coalesced, stampede_s = stampede()
        return seq_cold, seq_warm, par_cold, par_warm, invocations, coalesced, stampede_s

    seq_cold, seq_warm, par_cold, par_warm, invocations, coalesced, stampede_s = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    report(
        "E16_gris_fanout",
        f"{N_PROVIDERS} providers, {PROVIDER_S}s stall each "
        f"(sum={N_PROVIDERS * PROVIDER_S:.2f}s)"
        + ("  [quick mode]" if QUICK else "")
        + "\n"
        + fmt_table(
            ["dispatch", "cold collect (s)", "warm collect (s)"],
            [
                ("sequential (workers=0)", round(seq_cold, 3), round(seq_warm, 4)),
                (
                    f"parallel (workers={N_PROVIDERS})",
                    round(par_cold, 3),
                    round(par_warm, 4),
                ),
            ],
        )
        + f"\n\nstampede: {STAMPEDE} identical cold queries at once\n"
        + fmt_table(
            ["provider invocations", "coalesced waits", "total (s)"],
            [
                (
                    f"{min(invocations)}..{max(invocations)} per provider",
                    coalesced,
                    round(stampede_s, 3),
                )
            ],
        )
        + "\n\nClaim check (§10.3): fan-out latency is max(provider), not"
        "\nsum — parallel cold collect tracks one provider stall while"
        "\nsequential pays all of them; warm collects answer from cache;"
        "\nand single-flight coalescing invokes each provider exactly once"
        "\nunder a cold-query stampede.",
    )
    # sequential pays the sum of stalls; parallel pays roughly the max
    assert seq_cold >= N_PROVIDERS * PROVIDER_S
    assert par_cold < seq_cold / 2
    # warm collects never touch a provider
    assert seq_warm < PROVIDER_S
    assert par_warm < PROVIDER_S
    # the stampede coalesced onto exactly one provide() per provider
    assert invocations == [1] * N_PROVIDERS
    assert coalesced >= 1
