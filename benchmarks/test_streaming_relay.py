"""E23 — streaming search pipeline and the zero re-encode GIIS relay.

PR-10 rebuilt the search response path as an incremental stream: the
server forwards entries as the backend produces them, and a chaining
GIIS relays child SearchResultEntry frames byte-for-byte (re-framed
under the parent message id) instead of decoding and re-encoding each
one.  This bench measures both halves on the Figure-5 hierarchy — one
GIIS front end over four GRIS holding *disjoint* slices of the VO — at
MDS2-style scale:

* chained closed-loop throughput, relay on vs off, 2.5k/10k entries ×
  50/500 users, with a workload mixing indexed host-group lookups and
  VO-wide onelevel scans;
* time-to-first-entry (TTFE): issue → first SearchResultEntry at the
  client, the latency a streaming consumer feels.  Buffered aggregation
  pinned TTFE to full-fan-in latency; the streamed pipeline returns the
  first child frame as soon as it arrives.

Set ``E23_QUICK=1`` for the CI smoke ladder.  Full runs write
machine-readable results to ``BENCH_E23.json`` at the repo root; the
acceptance gate wants ≥1.3x chained throughput or ≥2x lower TTFE on
the 10k-entry/500-user rung.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import json
import os
import pathlib
import time

from loadgen import Workload, build_vo, closed_loop
from repro.ldap.dit import Scope
from repro.net import make_endpoint
from repro.net.transport import ConnectionClosed
from test_loadgen import git_describe
from repro.testbed.metrics import fmt_table

QUICK = bool(os.environ.get("E23_QUICK"))

N_GRIS = 2 if QUICK else 4
CHILDREN_PER_HOST = 20
# (hosts per GRIS, closed-loop users, requests per user)
GRID = (
    [(10, 8, 3)]
    if QUICK
    else [(30, 50, 20), (30, 500, 4), (120, 50, 20), (120, 500, 5)]
)
TIMEOUT_S = 120.0 if QUICK else 600.0


def vo_workload(total_hosts: int) -> Workload:
    """The chained-aggregate mix: mostly "everything about host X"
    (each host lives on exactly one GRIS, so the GIIS merges one real
    answer with three empties) plus a slice of VO-wide host scans that
    fan in entries from every child."""
    targets = [
        f"(hn=host{h})"
        for h in range(0, total_hosts, max(1, total_hosts // 24))
    ]
    return Workload(
        name="vo-chained-mixed",
        base="o=Grid",
        filters=tuple((f, 0.85 / len(targets)) for f in targets)
        + (("(objectclass=computer)", 0.15),),
        scopes=((Scope.SUBTREE, 0.85), (Scope.ONELEVEL, 0.15)),
    )


def _connect(endpoint, port):
    for attempt in range(3):
        try:
            return endpoint.connect(("127.0.0.1", port))
        except ConnectionClosed:
            if attempt == 2:
                raise
            time.sleep(0.05 * (attempt + 1))


def run_vo(hosts_per_gris: int, users: int, requests: int, relay: bool):
    """One closed-loop run against a freshly built VO."""
    vo = build_vo(
        N_GRIS,
        hosts_per_gris=hosts_per_gris,
        children_per_host=CHILDREN_PER_HOST,
        relay=relay,
        disjoint_hosts=True,
    )
    endpoint = make_endpoint("reactor")
    try:
        workload = vo_workload(N_GRIS * hosts_per_gris)
        stats = closed_loop(
            lambda: _connect(endpoint, vo.giis_port),
            workload,
            users,
            requests,
            timeout_s=TIMEOUT_S,
            measure_ttfe=True,
        )
        out = stats.summary()
        c = vo.giis_backend.metrics.counter
        out["giis_metrics"] = {
            "relay_entries": c("giis.relay.entries").value,
            "relay_fallback": c("giis.relay.fallback").value,
            "child_abandoned": c("giis.child.abandoned").value,
            "chained": c("giis.chained").value,
        }
        return workload, out
    finally:
        endpoint.close()
        vo.close()


def test_streaming_relay(report):
    runs = []
    for hosts_per_gris, users, requests in GRID:
        entries = N_GRIS * (1 + hosts_per_gris * (CHILDREN_PER_HOST + 1))
        workload, off = run_vo(hosts_per_gris, users, requests, relay=False)
        _, on = run_vo(hosts_per_gris, users, requests, relay=True)
        speedup = (
            round(on["throughput_rps"] / off["throughput_rps"], 2)
            if off["throughput_rps"]
            else 0.0
        )
        on_ttfe = on["ttfe_percentiles"]["p50_ms"]
        off_ttfe = off["ttfe_percentiles"]["p50_ms"]
        ttfe_ratio = round(off_ttfe / on_ttfe, 2) if on_ttfe else 0.0
        runs.append(
            {
                "workload": workload.describe(),
                "entries": entries,
                "users": users,
                "requests_per_user": requests,
                "relay_off": off,
                "relay_on": on,
                "speedup": speedup,
                "ttfe_ratio": ttfe_ratio,
            }
        )

    rows = [
        (
            r["entries"],
            r["users"],
            label,
            side["throughput_rps"],
            side["percentiles"]["p50_ms"],
            side["percentiles"]["p99_ms"],
            side["ttfe_percentiles"]["p50_ms"],
            side["ttfe_percentiles"]["p95_ms"],
            side["errors"],
        )
        for r in runs
        for label, side in (("decode", r["relay_off"]), ("relay", r["relay_on"]))
    ]
    gain_rows = [
        (r["entries"], r["users"], f"{r['speedup']}x", f"{r['ttfe_ratio']}x")
        for r in runs
    ]
    text = (
        f"chained search over {N_GRIS} disjoint GRIS, decode-then-forward "
        f"vs zero re-encode relay ({'quick mode' if QUICK else 'full mode'})\n"
        + fmt_table(
            ["entries", "users", "lane", "req/s", "p50 ms", "p99 ms",
             "ttfe p50", "ttfe p95", "errors"],
            rows,
        )
        + "\n\nrelay gain (throughput; TTFE = decode p50 / relay p50)\n"
        + fmt_table(["entries", "users", "speedup", "ttfe gain"], gain_rows)
        + "\n\nBoth lanes stream: entries reach the client as each child"
        "\nanswers instead of after full fan-in.  The relay lane then"
        "\ndrops the per-entry decode + re-encode at the GIIS — child"
        "\nSearchResultEntry frames are re-framed under the parent"
        "\nmessage id and copied through verbatim."
    )
    report("E23_streaming_relay", text)

    results = {
        "experiment": "E23",
        "quick": QUICK,
        "git": git_describe(),
        "gris": N_GRIS,
        "children_per_host": CHILDREN_PER_HOST,
        "runs": runs,
    }
    if not QUICK:
        out = pathlib.Path(__file__).parents[1] / "BENCH_E23.json"
        out.write_text(json.dumps(results, indent=2) + "\n")

    # Every virtual user completed its full request budget, error-free,
    # and the relay lane actually engaged (the decode lane never did).
    for r in runs:
        for side in ("relay_off", "relay_on"):
            assert r[side]["errors"] == 0, r
            assert r[side]["completed"] == r["users"] * r["requests_per_user"], r
        assert r["relay_on"]["giis_metrics"]["relay_entries"] > 0, r
        assert r["relay_off"]["giis_metrics"]["relay_entries"] == 0, r

    # Acceptance gate: the zero re-encode relay buys ≥1.3x chained
    # throughput or ≥2x lower TTFE on the big rung.
    if not QUICK:
        big = [r for r in runs if r["entries"] >= 10000 and r["users"] >= 500]
        assert big and (
            big[0]["speedup"] >= 1.3 or big[0]["ttfe_ratio"] >= 2.0
        ), [(r["entries"], r["users"], r["speedup"], r["ttfe_ratio"])
            for r in runs]
