"""F1 — Figure 1: distributed VOs survive network partition.

Paper claim: "While VO-B is split by network failure, it should operate
as two disjoint fragments."  Users on each side keep discovering the
resources reachable on their side; after the partition heals, full
views return.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

from scenarios import overlapping_vos

from repro.testbed.metrics import fmt_table


def visible_hosts(tb, user_host, directory):
    client = tb.client(user_host, directory)
    out = client.search("o=Grid", filter="(objectclass=computer)", check=False)
    return sorted(e.first("hn") for e in out.entries)


def run_partition_experiment(seed=0):
    tb, vo_a, vo_b1, vo_b2, members = overlapping_vos(seed=seed)
    rows = []

    def observe(phase, user, directory, expect_side=None):
        hosts = visible_hosts(tb, user, directory)
        rows.append((phase, user, directory.host, len(hosts), " ".join(hosts)))
        return hosts

    # -- before the partition: full views everywhere
    before_b1 = observe("before", "user-s1", vo_b1)
    before_b2 = observe("before", "user-s2", vo_b2)
    assert before_b1 == sorted(members["VO-B"])
    assert before_b2 == sorted(members["VO-B"])

    # -- partition the two sides (Figure 1's lightning bolt)
    side1 = [h for h in tb.net.hosts() if tb.net.node(h).site == "side1"]
    side2 = [h for h in tb.net.hosts() if tb.net.node(h).site == "side2"]
    tb.net.partition(side1, side2)
    tb.run(60.0)  # soft state purges unreachable registrations (ttl 30)

    during_b1 = observe("during", "user-s1", vo_b1)
    during_b2 = observe("during", "user-s2", vo_b2)
    during_a = observe("during", "user-s1", vo_a)

    # both fragments keep operating, each with its side's members
    b_members = set(members["VO-B"])
    assert during_b1 and set(during_b1) == {h for h in b_members if h.startswith("s1")}
    assert during_b2 and set(during_b2) == {h for h in b_members if h.startswith("s2")}
    # VO-A's directory (on side 1) serves side-1 members: partial info (§2.2)
    assert during_a == sorted(h for h in members["VO-A"] if h.startswith("s1"))

    # -- heal: views reconverge once registrations flow again
    tb.net.heal()
    tb.run(30.0)
    after_b1 = observe("after", "user-s1", vo_b1)
    after_b2 = observe("after", "user-s2", vo_b2)
    after_a = observe("after", "user-s1", vo_a)
    assert after_b1 == sorted(members["VO-B"])
    assert after_b2 == sorted(members["VO-B"])
    assert after_a == sorted(members["VO-A"])
    return rows


def test_fig1_partitioned_vo_operates_as_fragments(benchmark, report):
    rows = benchmark.pedantic(run_partition_experiment, rounds=1, iterations=1)
    report(
        "F1_partition",
        "Figure 1: VO views before / during / after a network partition\n"
        + fmt_table(
            ["phase", "user", "directory", "visible", "hosts"],
            rows,
        )
        + "\n\nClaim check: during the partition VO-B operates as two disjoint\n"
        "fragments (each side still answers with its reachable members),\n"
        "and views reconverge after the heal.",
    )


def test_fig1_fragments_are_disjoint(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    tb, vo_a, vo_b1, vo_b2, members = overlapping_vos(seed=7)
    side1 = [h for h in tb.net.hosts() if tb.net.node(h).site == "side1"]
    side2 = [h for h in tb.net.hosts() if tb.net.node(h).site == "side2"]
    tb.net.partition(side1, side2)
    tb.run(60.0)
    b1 = set(visible_hosts(tb, "user-s1", vo_b1))
    b2 = set(visible_hosts(tb, "user-s2", vo_b2))
    assert b1 and b2
    assert not (b1 & b2), "fragments must be disjoint during the partition"
    report(
        "F1_disjoint",
        f"VO-B fragment on side 1 sees: {sorted(b1)}\n"
        f"VO-B fragment on side 2 sees: {sorted(b2)}\n"
        f"intersection: {sorted(b1 & b2)} (empty = disjoint fragments)",
    )
