"""E15 — §10.1 under load: the bounded request executor.

The paper's protocol interpreter must stay responsive while backends
dispatch to slow information providers (§10.3) and chain to remote
directories (§10.4).  This bench measures, over real TCP loopback, what
the worker-pool executor buys and what its backpressure costs:

* **pipelining** — one connection sends a slow search followed by fast
  ones; inline execution (workers=0) head-of-line blocks the fast
  queries behind the slow one, the pool answers them immediately;
* **backpressure** — flooding a small pool answers ``busy(51)`` fast
  instead of silently queueing unbounded work;
* **deadlines** — a server-side time limit converts a stuck provider
  into a prompt ``timeLimitExceeded(3)`` answer.
"""

import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])

import threading
import time

from repro.ldap.backend import Backend, SearchOutcome
from repro.ldap.client import LdapClient
from repro.ldap.dit import Scope
from repro.ldap.entry import Entry
from repro.ldap.executor import RequestExecutor
from repro.ldap.protocol import ResultCode, SearchRequest
from repro.ldap.server import LdapServer
from repro.net.tcp import TcpEndpoint
from repro.testbed.metrics import fmt_table

SLOW_S = 0.5  # simulated provider stall
FAST_N = 8  # fast queries pipelined behind the slow one


class SlowFastBackend(Backend):
    """Sleeps for searches under ``cn=slow``; instant everywhere else."""

    def __init__(self, slow_s=SLOW_S):
        self.slow_s = slow_s

    def _search_impl(self, req, ctx):
        if "slow" in req.base:
            time.sleep(self.slow_s)
        return SearchOutcome(
            entries=[Entry(req.base or "o=G", objectclass="organization")]
        )


def serve(backend, workers, queue_limit=64, default_time_limit=0.0):
    executor = RequestExecutor(workers=workers, queue_limit=queue_limit)
    server = LdapServer(
        backend, executor=executor, default_time_limit=default_time_limit
    )
    endpoint = TcpEndpoint()
    port = endpoint.listen(0, server.handle_connection)
    return endpoint, port, server


def pipelined_fast_latency(workers):
    """Seconds until all fast answers arrive, slow query sent first."""
    endpoint, port, _server = serve(SlowFastBackend(), workers=workers)
    try:
        client = LdapClient(endpoint.connect(("127.0.0.1", port)))
        fast_done = threading.Event()
        answered = []

        def on_fast(result, _error):
            answered.append(result.result.code)
            if len(answered) == FAST_N:
                fast_done.set()

        started = time.perf_counter()
        client.search_async(
            SearchRequest(base="cn=slow", scope=Scope.BASE),
            lambda r, _e: None,
        )
        req = SearchRequest(base="o=G", scope=Scope.BASE)
        for _ in range(FAST_N):
            client.search_async(req, on_fast)
        assert fast_done.wait(SLOW_S * 4 + 5.0)
        elapsed = time.perf_counter() - started
        assert all(code == ResultCode.SUCCESS for code in answered)
        return elapsed
    finally:
        endpoint.close()


def flood(workers, queue_limit, requests):
    """(busy_count, first_busy_latency_s, total_s) for a request flood."""
    endpoint, port, server = serve(
        SlowFastBackend(slow_s=0.1), workers=workers, queue_limit=queue_limit
    )
    try:
        client = LdapClient(endpoint.connect(("127.0.0.1", port)))
        all_done = threading.Event()
        first_busy = []
        codes = []

        def on_done(result, _error):
            codes.append(int(result.result.code))
            if result.result.code == ResultCode.BUSY and not first_busy:
                first_busy.append(time.perf_counter())
            if len(codes) == requests:
                all_done.set()

        started = time.perf_counter()
        req = SearchRequest(base="cn=slow", scope=Scope.BASE)
        for _ in range(requests):
            client.search_async(req, on_done)
        assert all_done.wait(30.0)
        total = time.perf_counter() - started
        busy = codes.count(int(ResultCode.BUSY))
        busy_at = (first_busy[0] - started) if first_busy else float("nan")
        assert busy == int(server.metrics.counter("ldap.search.rejected").value)
        return busy, busy_at, total
    finally:
        endpoint.close()


def deadline_latency(default_time_limit, stall):
    """Seconds until a stuck search is answered, and the result code."""
    endpoint, port, _server = serve(
        SlowFastBackend(slow_s=stall),
        workers=2,
        default_time_limit=default_time_limit,
    )
    try:
        client = LdapClient(endpoint.connect(("127.0.0.1", port)))
        started = time.perf_counter()
        out = client.search("cn=slow", Scope.BASE, check=False)
        return time.perf_counter() - started, int(out.result.code)
    finally:
        endpoint.close()


def test_concurrent_clients(benchmark, report):
    def run():
        inline_s = pipelined_fast_latency(workers=0)
        pooled_s = pipelined_fast_latency(workers=4)
        busy, busy_at, flood_s = flood(workers=2, queue_limit=4, requests=16)
        tle_s, tle_code = deadline_latency(default_time_limit=0.3, stall=2.0)
        return inline_s, pooled_s, busy, busy_at, flood_s, tle_s, tle_code

    inline_s, pooled_s, busy, busy_at, flood_s, tle_s, tle_code = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    report(
        "E15_concurrent_clients",
        f"{FAST_N} fast queries pipelined behind one {SLOW_S}s-slow query "
        "(single TCP connection)\n"
        + fmt_table(
            ["executor", "time to all fast answers (s)"],
            [
                ("inline (workers=0)", round(inline_s, 3)),
                ("pool (workers=4)", round(pooled_s, 3)),
            ],
        )
        + "\n\nflood of 16 slow queries at a pool of 2 with queue limit 4\n"
        + fmt_table(
            ["busy answers", "first busy after (s)", "flood total (s)"],
            [(busy, round(busy_at, 3), round(flood_s, 3))],
        )
        + f"\n\nstuck provider (2s) under a 0.3s server time limit: "
        f"answered code={tle_code} in {tle_s:.3f}s"
        + "\n\nClaim check (§10.1): the interpreter stays responsive under"
        "\nslow backends — the pool removes head-of-line blocking, queue"
        "\noverflow fails fast with busy(51), and the deadline converts a"
        "\nstuck provider into a prompt timeLimitExceeded(3).",
    )
    # the pool answers fast queries while the slow one is still running
    assert inline_s >= SLOW_S
    assert pooled_s < SLOW_S / 2
    # overflow is refused quickly, not queued behind the stalled pool
    assert busy >= 1
    assert busy_at < 0.1
    # the deadline answers long before the provider returns
    assert tle_code == ResultCode.TIME_LIMIT_EXCEEDED
    assert tle_s < 1.0
