"""End-to-end GRRP invitation flow (§10.4) on the simulated network."""


from repro.giis.hierarchy import (
    GRRP_DATAGRAM_PORT,
    LdapGrrpSender,
    listen_for_invitations,
    make_registrant,
)
from repro.grip.registration import Inviter
from repro.testbed import GridTestbed


def build(tb, accept=None):
    """A GIIS and an un-registered GRIS wired for invitations."""
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO-A")
    gris = tb.standard_gris("r0", "hn=r0, o=Grid")
    registrant = make_registrant(
        tb.sim,
        gris.url,
        gris.suffix,
        LdapGrrpSender(tb.connector_from("r0")),
        interval=10.0,
        ttl=30.0,
        name="r0",
        accept_invitation=accept,
    )
    gris.registrants.append(registrant)
    listen_for_invitations(gris.node, registrant)
    inviter = Inviter(
        tb.sim,
        str(giis.url),
        lambda host, msg: giis.node.send_datagram(
            (host, GRRP_DATAGRAM_PORT), msg.to_bytes()
        ),
    )
    return giis, gris, registrant, inviter


class TestInvitation:
    def test_invited_provider_turns_around_and_registers(self):
        tb = GridTestbed(seed=77)
        giis, gris, registrant, inviter = build(tb)
        assert len(giis.backend.registry) == 0

        inviter.invite("r0", vo="VO-A")
        tb.run(2.0)

        assert giis.backend.registry.is_registered(str(gris.url))
        # and the stream is sustained (fault-tolerant registration)
        tb.run(60.0)
        assert giis.backend.registry.is_registered(str(gris.url))
        # the VO can now discover the invited resource
        out = tb.client("user", giis).search(
            "o=Grid", filter="(objectclass=computer)"
        )
        assert [e.first("hn") for e in out] == ["r0"]

    def test_invitation_policy_refusal(self):
        """'Information providers may wish to assert policy over which
        VOs they are prepared to join' (§2.3)."""
        tb = GridTestbed(seed=77)
        giis, gris, registrant, inviter = build(
            tb, accept=lambda d, m: m.metadata.get("vo") == "VO-GOOD"
        )
        inviter.invite("r0", vo="VO-EVIL")
        tb.run(5.0)
        assert len(giis.backend.registry) == 0
        assert registrant.directories() == []

    def test_non_invite_datagrams_ignored(self):
        tb = GridTestbed(seed=77)
        giis, gris, registrant, inviter = build(tb)
        # a stray registration datagram at the provider is not an invite
        from repro.grip.messages import GrrpMessage

        stray = GrrpMessage(
            service_url="ldap://other:2135/", timestamp=0.0, valid_until=100.0
        )
        giis.node.send_datagram(("r0", GRRP_DATAGRAM_PORT), stray.to_bytes())
        giis.node.send_datagram(("r0", GRRP_DATAGRAM_PORT), b"garbage")
        tb.run(2.0)
        assert registrant.directories() == []

    def test_third_party_can_invite(self):
        """'...or perhaps a third party' — the inviter need not be the
        directory itself."""
        tb = GridTestbed(seed=77)
        giis, gris, registrant, _ = build(tb)
        admin = tb.host("vo-admin")
        third_party = Inviter(
            tb.sim,
            str(giis.url),
            lambda host, msg: admin.send_datagram(
                (host, GRRP_DATAGRAM_PORT), msg.to_bytes()
            ),
        )
        third_party.invite("r0", vo="VO-A")
        tb.run(2.0)
        assert giis.backend.registry.is_registered(str(gris.url))
