"""Tests for client-side referral chasing against referral-mode GIISes."""


from repro.ldap.referral import chase_referrals, search_following_referrals
from repro.testbed import GridTestbed


def build(tb, mode="referral", n=3):
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO", mode=mode)
    children = []
    for i in range(n):
        gris = tb.standard_gris(f"r{i}", f"hn=r{i}, o=Grid", load_mean=0.5)
        tb.register(gris, giis, interval=15.0, ttl=45.0, name=f"r{i}")
        children.append(gris)
    tb.run(1.0)
    return giis, children


class TestReferralChasing:
    def test_full_resolution(self):
        tb = GridTestbed(seed=31)
        giis, _ = build(tb)
        client = tb.client("user", giis)
        out = search_following_referrals(
            client,
            dial=lambda url: tb.client("user", url),
            base="o=Grid",
            filter="(objectclass=computer)",
        )
        assert sorted(e.first("hn") for e in out.entries) == ["r0", "r1", "r2"]
        assert out.referrals == []  # all resolved

    def test_filter_applied_at_target(self):
        tb = GridTestbed(seed=31)
        giis, _ = build(tb)
        client = tb.client("user", giis)
        out = search_following_referrals(
            client,
            dial=lambda url: tb.client("user", url),
            base="o=Grid",
            filter="(hn=r1)",
        )
        assert [e.first("hn") for e in out.entries] == ["r1"]

    def test_dead_target_yields_partial_results(self):
        tb = GridTestbed(seed=31)
        giis, children = build(tb)
        children[0].node.crash()
        client = tb.client("user", giis)
        out = search_following_referrals(
            client,
            dial=lambda url: tb.client("user", url),
            base="o=Grid",
            filter="(objectclass=computer)",
        )
        assert sorted(e.first("hn") for e in out.entries) == ["r1", "r2"]

    def test_duplicate_referrals_dialed_once(self):
        tb = GridTestbed(seed=31)
        giis, _ = build(tb, n=1)
        client = tb.client("user", giis)
        dials = []

        def dial(url):
            dials.append(str(url))
            return tb.client("user", url)

        initial = client.search("o=Grid", filter="(objectclass=computer)", check=False)
        doubled = type(initial)(
            entries=list(initial.entries),
            referrals=list(initial.referrals) * 2,
            result=initial.result,
        )
        out = chase_referrals(doubled, dial, filter="(objectclass=computer)")
        assert len(dials) == 1
        assert len(out.entries) == 1

    def test_max_hops_bounds_chasing(self):
        tb = GridTestbed(seed=31)
        # referral GIIS pointing at a second referral GIIS pointing at a GRIS
        top = tb.add_giis("top", "o=Grid", mode="referral")
        mid = tb.add_giis("mid", "o=A, o=Grid", mode="referral")
        tb.register(mid, top, name="mid")
        gris = tb.standard_gris("leaf", "hn=leaf, o=A, o=Grid")
        tb.register(gris, mid, name="leaf")
        tb.run(1.0)

        client = tb.client("user", top)
        out = search_following_referrals(
            client,
            dial=lambda url: tb.client("user", url),
            base="o=Grid",
            filter="(objectclass=computer)",
            max_hops=1,
        )
        # one hop reaches mid, whose referral to the GRIS is left unchased
        assert out.entries == [] or all(
            not e.is_a("computer") for e in out.entries
        )
        assert out.referrals  # unresolved frontier reported

        out = search_following_referrals(
            client,
            dial=lambda url: tb.client("user", url),
            base="o=Grid",
            filter="(objectclass=computer)",
            max_hops=3,
        )
        assert [e.first("hn") for e in out.entries] == ["leaf"]

    def test_malformed_referral_skipped(self):
        tb = GridTestbed(seed=31)
        giis, _ = build(tb, n=1)
        client = tb.client("user", giis)
        initial = client.search("o=Grid", filter="(objectclass=computer)", check=False)
        poisoned = type(initial)(
            entries=[],
            referrals=["http://not-ldap/", *initial.referrals],
            result=initial.result,
        )
        out = chase_referrals(
            poisoned,
            dial=lambda url: tb.client("user", url),
            filter="(objectclass=computer)",
        )
        assert len(out.entries) == 1
