"""Indexed DIT storage engine and filter-aware query planner.

Three layers of checks:

* unit tests for :class:`AttributeIndex` and :func:`candidates_for`
  (the planner's fallback rules: AND needs one indexed conjunct, OR is
  poisoned by any unindexed disjunct, substring/ordering/NOT scan);
* incremental maintenance: a DIT mutated through add/modify/delete/
  clear/load holds exactly the postings a freshly built DIT would;
* a hypothesis property: for random trees and random filters the
  planned search is byte-identical to a naive full scan — same
  entries, same order, same projections, same size-limit partials.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.gris.core import GrisBackend
from repro.gris.provider import FunctionProvider
from repro.ldap.backend import RequestContext
from repro.ldap.dit import DIT, Scope, SizeLimitExceeded, in_scope
from repro.ldap.dn import DN, RDN
from repro.ldap.entry import Entry
from repro.ldap.filter import parse as parse_filter
from repro.ldap.index import AttributeIndex
from repro.ldap.plan import candidates_for, is_plannable
from repro.ldap.protocol import SearchRequest
from repro.net.clock import WallClock
from repro.obs.metrics import MetricsRegistry


def _entry(dn, **attrs):
    return Entry(dn, **attrs)


class TestAttributeIndex:
    def _index(self):
        idx = AttributeIndex(("cpu", "system"))
        e1 = _entry("hn=a", objectclass="host", cpu="sparc", system="solaris")
        e2 = _entry("hn=b", objectclass="host", cpu="x86", system="linux")
        idx.add(e1.dn, e1.get)
        idx.add(e2.dn, e2.get)
        return idx, e1, e2

    def test_equality_and_presence(self):
        idx, e1, e2 = self._index()
        assert idx.equality("cpu", "sparc") == {e1.dn}
        assert idx.equality("cpu", "SPARC") == {e1.dn}  # normalized match
        assert idx.equality("cpu", "mips") == frozenset()
        assert idx.presence("system") == {e1.dn, e2.dn}

    def test_uncovered_attr_returns_none(self):
        idx, _, _ = self._index()
        assert idx.equality("memory", "512") is None
        assert idx.presence("memory") is None
        assert not idx.covers("memory")
        assert idx.covers("cpu")

    def test_discard_cleans_postings(self):
        idx, e1, e2 = self._index()
        idx.discard(e1.dn)
        assert idx.equality("cpu", "sparc") == frozenset()
        assert idx.presence("cpu") == {e2.dn}
        assert e1.dn not in idx
        idx.discard(e1.dn)  # idempotent
        assert len(idx) == 1

    def test_sizes_count_keys_with_attr(self):
        idx, _, _ = self._index()
        assert idx.size("cpu") == 2
        assert idx.sizes()["system"] == 2


class TestPlanner:
    def _index(self):
        idx = AttributeIndex(("cpu",))
        for i in range(6):
            e = _entry(
                f"hn=h{i}",
                objectclass="host",
                cpu="sparc" if i < 2 else "x86",
                memory=str(128 * i),
            )
            idx.add(e.dn, e.get)
        return idx

    def test_equality_planned(self):
        idx = self._index()
        got = candidates_for(parse_filter("(cpu=sparc)"), idx)
        assert got is not None and len(got) == 2

    def test_unindexed_attr_falls_back(self):
        idx = self._index()
        assert candidates_for(parse_filter("(memory=128)"), idx) is None

    def test_and_needs_one_indexed_conjunct(self):
        idx = self._index()
        filt = parse_filter("(&(cpu=x86)(memory=512))")
        got = candidates_for(filt, idx)
        assert got is not None and len(got) == 4  # cpu postings only
        assert candidates_for(parse_filter("(&(memory=512)(hn=h4))"), idx) is None

    def test_or_poisoned_by_unindexed_branch(self):
        idx = self._index()
        assert candidates_for(parse_filter("(|(cpu=x86)(memory=0))"), idx) is None
        got = candidates_for(parse_filter("(|(cpu=x86)(cpu=sparc))"), idx)
        assert got is not None and len(got) == 6

    def test_substring_ordering_not_fall_back(self):
        idx = self._index()
        for text in ("(cpu=spa*)", "(cpu>=a)", "(!(cpu=x86))"):
            assert candidates_for(parse_filter(text), idx) is None
        # ...but NOT under an AND is planned from the other conjunct.
        got = candidates_for(parse_filter("(&(cpu=x86)(!(memory=512)))"), idx)
        assert got is not None and len(got) == 4

    def test_is_plannable_mirrors_planner(self):
        idx = self._index()
        for text, want in [
            ("(cpu=sparc)", True),
            ("(memory=1)", False),
            ("(&(cpu=sparc)(memory=1))", True),
            ("(|(cpu=sparc)(memory=1))", False),
            ("(cpu=*)", True),
            ("(!(cpu=sparc))", False),
        ]:
            assert is_plannable(parse_filter(text), idx) is want


def _site(n=8):
    entries = [_entry("o=Grid", objectclass="organization", o="Grid")]
    for i in range(n):
        entries.append(
            _entry(
                f"hn=h{i}, o=Grid",
                objectclass="GridComputeResource",
                cpu="sparc" if i % 3 == 0 else "x86",
                hn=f"h{i}",
            )
        )
    return entries


class TestDitPlanning:
    def test_planned_equals_scanned(self):
        indexed = DIT(index_attrs=("cpu",))
        plain = DIT()
        for e in _site():
            indexed.add(e)
            plain.add(e)
        filt = parse_filter("(cpu=sparc)")
        a = indexed.search("o=Grid", Scope.SUBTREE, filt)
        b = plain.search("o=Grid", Scope.SUBTREE, filt)
        # objectclass is always indexed, so force the scan comparison
        # through an attribute only `indexed` covers.
        assert a == b and len(a) == 3
        assert indexed.stats_planned >= 1
        assert plain.stats_scanned >= 1

    def test_objectclass_always_indexed(self):
        dit = DIT()
        dit.load(_site())
        dit.search("o=Grid", Scope.SUBTREE, parse_filter("(objectclass=organization)"))
        assert dit.stats_planned == 1 and dit.stats_scanned == 0

    def test_scan_path_counted(self):
        dit = DIT(index_attrs=("cpu",))
        dit.load(_site())
        dit.search("o=Grid", Scope.SUBTREE, parse_filter("(hn=h1)"))
        assert dit.stats_scanned == 1

    def test_set_index_attrs_rebuilds(self):
        dit = DIT()
        dit.load(_site())
        assert dit.index_sizes().get("cpu") is None
        dit.set_index_attrs(("cpu",))
        assert dit.index_sizes()["cpu"] == 8
        dit.search("o=Grid", Scope.SUBTREE, parse_filter("(cpu=x86)"))
        assert dit.stats_planned == 1
        dit.set_index_attrs(())
        assert dit.index_sizes().get("cpu") is None

    def test_index_size_gauges(self):
        metrics = MetricsRegistry()
        dit = DIT(index_attrs=("cpu",), metrics=metrics, name="t")
        dit.load(_site())
        gauge = metrics.get("ldap.index.size", labels={"dit": "t", "attr": "cpu"})
        assert gauge is not None and gauge.value == 8.0

    def test_size_limit_partial_identical_both_paths(self):
        indexed = DIT(index_attrs=("cpu",))
        plain = DIT()
        for e in _site(12):
            indexed.add(e)
            plain.add(e)
        filt = parse_filter("(cpu=x86)")
        with pytest.raises(SizeLimitExceeded) as via_index:
            indexed.search("o=Grid", Scope.SUBTREE, filt, size_limit=3)
        with pytest.raises(SizeLimitExceeded) as via_scan:
            plain.search("o=Grid", Scope.SUBTREE, filt, size_limit=3)
        assert via_index.value.partial == via_scan.value.partial
        assert len(via_index.value.partial) == 3
        full = plain.search("o=Grid", Scope.SUBTREE, filt)
        assert via_index.value.partial == full[:3]


class TestIncrementalMaintenance:
    def _fresh(self, dit):
        """A new DIT indexing the same attrs over the same entries."""
        other = DIT(index_attrs=dit.index_attrs)
        other.load(dit.dump())
        return other

    def _assert_converged(self, dit):
        fresh = self._fresh(dit)
        assert dit.index_sizes() == fresh.index_sizes()
        for text in ("(cpu=sparc)", "(cpu=x86)", "(objectclass=*)", "(cpu=*)"):
            filt = parse_filter(text)
            assert dit.search("", Scope.SUBTREE, filt) == fresh.search(
                "", Scope.SUBTREE, filt
            )

    def test_add_replace_delete_modify_clear(self):
        dit = DIT(index_attrs=("cpu",))
        dit.load(_site())
        self._assert_converged(dit)

        dit.add(_entry("hn=h0, o=Grid", objectclass="host", cpu="mips"), replace=True)
        self._assert_converged(dit)
        assert dit.search("", Scope.SUBTREE, parse_filter("(cpu=mips)"))

        dit.delete("hn=h3, o=Grid")
        self._assert_converged(dit)

        def mutate(entry):
            entry.put("cpu", "arm")

        dit.modify("hn=h1, o=Grid", mutate)
        self._assert_converged(dit)
        assert dit.search("", Scope.SUBTREE, parse_filter("(cpu=arm)"))

        dit.clear()
        assert dit.index_sizes() == {"cpu": 0, "objectclass": 0}
        assert dit.search("", Scope.SUBTREE, parse_filter("(cpu=arm)")) == []

    def test_modify_removing_attr_drops_posting(self):
        dit = DIT(index_attrs=("cpu",))
        dit.load(_site(3))
        dit.modify("hn=h0, o=Grid", lambda e: e.remove_attr("cpu"))
        assert not dit.search("", Scope.SUBTREE, parse_filter("(cpu=sparc)"))
        self._assert_converged(dit)


# -- property test: planner == naive scan ----------------------------------

_ATTRS = ["cpu", "system", "memory"]
_VALUES = ["a", "b", "c"]
_NAMES = list(string.ascii_lowercase[:6])


@st.composite
def _tree(draw):
    entries = {}
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        depth = draw(st.integers(min_value=1, max_value=3))
        rdns = tuple(
            RDN.single("cn", draw(st.sampled_from(_NAMES))) for _ in range(depth)
        )
        dn = DN(rdns)
        entry = Entry(dn, objectclass=draw(st.sampled_from(["host", "org"])))
        for attr in _ATTRS:
            for value in draw(
                st.lists(st.sampled_from(_VALUES), max_size=2, unique=True)
            ):
                entry.add_value(attr, value)
        entries[dn] = entry
    return list(entries.values())


@st.composite
def _filter(draw, depth=2):
    kind = draw(
        st.sampled_from(
            ["eq", "present", "substr", "ge", "not", "and", "or"]
            if depth > 0
            else ["eq", "present", "substr", "ge"]
        )
    )
    attr = draw(st.sampled_from(_ATTRS + ["objectclass"]))
    value = draw(st.sampled_from(_VALUES + ["host", "org"]))
    if kind == "eq":
        return f"({attr}={value})"
    if kind == "present":
        return f"({attr}=*)"
    if kind == "substr":
        return f"({attr}={value}*)"
    if kind == "ge":
        return f"({attr}>={value})"
    if kind == "not":
        return f"(!{draw(_filter(depth=depth - 1))})"
    clauses = draw(st.lists(_filter(depth=depth - 1), min_size=1, max_size=3))
    return f"({'&' if kind == 'and' else '|'}{''.join(clauses)})"


class TestPlannerProperty:
    @given(
        entries=_tree(),
        filter_text=_filter(),
        index_attrs=st.sets(st.sampled_from(_ATTRS), max_size=3),
        scope=st.sampled_from([Scope.ONELEVEL, Scope.SUBTREE]),
        base_depth=st.integers(min_value=0, max_value=2),
        attrs=st.none() | st.sets(st.sampled_from(_ATTRS + ["cn"]), max_size=2),
        size_limit=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=120, deadline=None)
    def test_planned_search_equals_naive_scan(
        self, entries, filter_text, index_attrs, scope, base_depth, attrs, size_limit
    ):
        dit = DIT(index_attrs=index_attrs)
        dit.load(entries)
        filt = parse_filter(filter_text)
        base = (
            entries[0].dn
            if entries and base_depth and len(entries[0].dn) >= base_depth
            else DN.root()
        )
        projection = sorted(attrs) if attrs is not None else None

        naive = [e for e in entries if in_scope(e.dn, base, scope) and filt.matches(e)]
        naive.sort(key=lambda e: e.dn.sort_key)
        expect_partial = None
        if size_limit and len(naive) > size_limit:
            expect_partial = [e.project(projection) for e in naive[:size_limit]]
        expected = [e.project(projection) for e in naive]

        try:
            got = dit.search(base, scope, filt, attrs=projection, size_limit=size_limit)
        except SizeLimitExceeded as exc:
            assert expect_partial is not None
            assert exc.partial == expect_partial
        else:
            assert expect_partial is None
            assert got == expected


class TestGrisView:
    def _gris(self, index_attrs=None, n=10):
        gris = GrisBackend("o=Grid", clock=WallClock(), index_attrs=index_attrs)
        gris.add_provider(
            FunctionProvider(
                "p1",
                lambda: [
                    _entry(
                        f"hn=h{i}",
                        objectclass="host",
                        cpu="sparc" if i % 2 else "x86",
                        hn=f"h{i}",
                    )
                    for i in range(n)
                ],
                cache_ttl=300.0,
            )
        )
        return gris

    def _search(self, gris, text):
        req = SearchRequest(
            base="o=Grid", scope=Scope.SUBTREE, filter=parse_filter(text)
        )
        return gris._search_impl(req, RequestContext())

    def test_indexed_view_matches_linear(self):
        indexed = self._gris(index_attrs=["cpu"])
        linear = self._gris()
        for text in ("(cpu=sparc)", "(cpu=*)", "(&(cpu=x86)(objectclass=host))"):
            a = self._search(indexed, text)
            b = self._search(linear, text)
            assert [str(e.dn) for e in a.entries] == [str(e.dn) for e in b.entries]
            # mds-timestamp stamps differ between the two backends;
            # the payload attributes must not.
            keep = ("objectclass", "cpu", "hn")
            assert [e.project(keep) for e in a.entries] == [
                e.project(keep) for e in b.entries
            ]
        assert indexed._search_indexed.value == 3
        assert indexed._search_scanned.value == 0
        assert linear._search_scanned.value == 3

    def test_unplannable_filter_falls_back_to_scan(self):
        gris = self._gris(index_attrs=["cpu"])
        out = self._search(gris, "(hn=h*)")
        assert len(out.entries) == 10
        assert gris._search_scanned.value == 1

    def test_view_resyncs_after_cache_refresh(self):
        clock = WallClock()
        state = {"cpu": "sparc"}
        gris = GrisBackend("o=Grid", clock=clock, index_attrs=["cpu"])
        gris.add_provider(
            FunctionProvider(
                "p1",
                lambda: [_entry("hn=h0", objectclass="host", cpu=state["cpu"])],
                cache_ttl=0.0,  # every collect refreshes
            )
        )
        assert len(self._search(gris, "(cpu=sparc)").entries) == 1
        state["cpu"] = "x86"
        assert len(self._search(gris, "(cpu=sparc)").entries) == 0
        assert len(self._search(gris, "(cpu=x86)").entries) == 1

    def test_remove_provider_drops_view_entries(self):
        gris = self._gris(index_attrs=["cpu"])
        self._search(gris, "(cpu=sparc)")
        assert len(gris._view) > 0
        gris.remove_provider("p1")
        assert len(gris._view) == 0
        assert self._search(gris, "(cpu=sparc)").entries == []
