"""Regression guard: every example script runs cleanly end-to-end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    sorted(p.name for p in EXAMPLES.glob("*.py")),
    ids=lambda name: name,
)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "superscheduler.py",
        "replica_selection.py",
        "monitoring_troubleshooting.py",
        "partitioned_vo.py",
        "hierarchical_vo.py",
    } <= names
