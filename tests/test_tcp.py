"""Integration tests for the real TCP/UDP transports.

Parametrized over both wire transports — thread-per-connection and the
selector reactor — since they promise identical framing and Connection
semantics.
"""

import threading
import time

import pytest

from repro.net import make_endpoint
from repro.net.transport import ConnectionClosed


@pytest.fixture(params=["threads", "reactor"])
def endpoint(request):
    ep = make_endpoint(request.param)
    yield ep
    ep.close()


def wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestTcp:
    def test_echo(self, endpoint):
        def handler(conn):
            conn.set_receiver(lambda m: conn.send(b"echo:" + m))

        port = endpoint.listen(0, handler)
        conn = endpoint.connect(("127.0.0.1", port))
        got = []
        conn.set_receiver(got.append)
        conn.send(b"hi")
        assert wait_for(lambda: got == [b"echo:hi"])
        conn.close()

    def test_framing_preserves_boundaries(self, endpoint):
        got = []
        port = endpoint.listen(0, lambda c: c.set_receiver(got.append))
        conn = endpoint.connect(("127.0.0.1", port))
        msgs = [bytes([i]) * (i * 100 + 1) for i in range(20)]
        for m in msgs:
            conn.send(m)
        assert wait_for(lambda: len(got) == 20)
        assert got == msgs
        conn.close()

    def test_large_frame(self, endpoint):
        got = []
        port = endpoint.listen(0, lambda c: c.set_receiver(got.append))
        conn = endpoint.connect(("127.0.0.1", port))
        big = b"x" * (2 * 1024 * 1024)
        conn.send(big)
        assert wait_for(lambda: got and len(got[0]) == len(big))
        conn.close()

    def test_connect_refused(self, endpoint):
        with pytest.raises(ConnectionClosed):
            endpoint.connect(("127.0.0.1", 1))  # nothing listens there

    def test_close_propagates(self, endpoint):
        server_conns = []
        port = endpoint.listen(0, server_conns.append)
        conn = endpoint.connect(("127.0.0.1", port))
        assert wait_for(lambda: bool(server_conns))
        closed = threading.Event()
        server_conns[0].set_close_handler(closed.set)
        conn.close()
        assert closed.wait(5.0)

    def test_send_after_close(self, endpoint):
        port = endpoint.listen(0, lambda c: None)
        conn = endpoint.connect(("127.0.0.1", port))
        conn.close()
        with pytest.raises(ConnectionClosed):
            conn.send(b"x")

    def test_backlog_before_receiver(self, endpoint):
        server_conns = []
        port = endpoint.listen(0, server_conns.append)
        conn = endpoint.connect(("127.0.0.1", port))
        conn.send(b"early")
        assert wait_for(lambda: bool(server_conns))
        time.sleep(0.05)  # let the frame arrive before installing receiver
        got = []
        server_conns[0].set_receiver(got.append)
        assert wait_for(lambda: got == [b"early"])
        conn.close()

    def test_many_concurrent_connections(self, endpoint):
        def handler(conn):
            conn.set_receiver(lambda m: conn.send(bytes(m).upper()))

        port = endpoint.listen(0, handler)
        results = {}

        def client(i):
            c = endpoint.connect(("127.0.0.1", port))
            got = []
            c.set_receiver(got.append)
            c.send(f"msg{i}".encode())
            wait_for(lambda: got)
            results[i] = got[0] if got else None
            c.close()

        threads = [threading.Thread(target=client, args=(i,)) for i in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10.0)
        assert all(results[i] == f"MSG{i}".upper().encode() for i in range(10))

    def test_udp_datagrams(self, endpoint):
        got = []
        port = endpoint.on_datagram(0, lambda src, p: got.append(p))
        endpoint.send_datagram(("127.0.0.1", port), b"ping")
        assert wait_for(lambda: got == [b"ping"])
