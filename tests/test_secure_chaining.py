"""§7/§10.4 trust modes across the GIIS: trusted-directory chaining.

"The information provider(s) and aggregate directory have the same data
access policy and the provider(s) trusts the directory.  Here, the
provider can respond to any authenticated query from the directory,
which it trusts to apply its policy on its behalf."

The scenario: GRIS providers restrict ``load5`` to the directory
identity ``CN=vo-giis`` (and user ``CN=alice``).  Anonymous users get
nothing sensitive directly — but the GIIS, binding with its trusted
server credential, can read and (per its own policy) redistribute it.
"""

import random


from repro.security import (
    CertificateAuthority,
    GsiAuthenticator,
    TrustStore,
    attribute_restricted_policy,
    make_token,
)
from repro.testbed import GridTestbed

RNG = random.Random(555)
BITS = 256
CA = CertificateAuthority("CN=GridCA", rng=RNG, bits=BITS)
GIIS_CRED = CA.issue("CN=vo-giis", rng=RNG, bits=BITS)
ALICE = CA.issue("CN=alice", rng=RNG, bits=BITS)
TRUST = TrustStore([CA.certificate])


def build(tb, giis_credential=None):
    giis = tb.add_giis(
        "vo-giis", "o=Grid", vo_name="SecVO", credential=giis_credential
    )
    grises = []
    for host in ("s0", "s1"):
        policy = attribute_restricted_policy(
            public_attrs=["objectclass", "hn", "system", "perf", "period"],
            restricted_attrs=["load1", "load5", "load15"],
            allowed_identities=["CN=vo-giis", "CN=alice"],
        )
        auth = GsiAuthenticator(TRUST, f"ldap://{host}:2135/")
        gris = tb.standard_gris(
            host, f"hn={host}, o=Grid", policy=policy, authenticator=auth
        )
        tb.register(gris, giis, interval=15.0, ttl=45.0, name=host)
        grises.append(gris)
    tb.run(1.0)
    return giis, grises


class TestTrustedDirectoryChaining:
    def test_anonymous_direct_query_hides_load(self):
        tb = GridTestbed(seed=66)
        giis, grises = build(tb)
        direct = tb.client("user", grises[0])
        out = direct.search("hn=s0, o=Grid", filter="(objectclass=loadaverage)")
        assert len(out) == 1
        assert not out.entries[0].has("load5")

    def test_alice_direct_query_sees_load(self):
        tb = GridTestbed(seed=66)
        giis, grises = build(tb)
        direct = tb.client("alice", grises[0])
        token = make_token(ALICE, "ldap://s0:2135/", now=tb.sim.now())
        direct.bind(mechanism="GSI", credentials=token)
        out = direct.search("hn=s0, o=Grid", filter="(objectclass=loadaverage)")
        assert out.entries[0].has("load5")

    def test_untrusted_giis_cannot_proxy_load(self):
        """Without a credential the GIIS is just another anonymous
        client: restricted attributes never reach it."""
        tb = GridTestbed(seed=66)
        giis, _ = build(tb, giis_credential=None)
        client = tb.client("user", giis)
        out = client.search("o=Grid", filter="(objectclass=loadaverage)")
        assert len(out) == 2
        assert all(not e.has("load5") for e in out)

    def test_trusted_giis_proxies_load(self):
        """Mode 1: the provider trusts CN=vo-giis; data flows through."""
        tb = GridTestbed(seed=66)
        giis, _ = build(tb, giis_credential=GIIS_CRED)
        client = tb.client("user", giis)
        out = client.search("o=Grid", filter="(objectclass=loadaverage)")
        assert len(out) == 2
        assert all(e.has("load5") for e in out)

    def test_trusted_giis_can_apply_own_policy(self):
        """The directory applies policy 'on [the provider's] behalf':
        same VO restriction enforced at the GIIS front end."""
        from repro.security import AccessPolicy, AccessRule

        giis_policy = AccessPolicy(
            [
                AccessRule.make("CN=alice"),  # VO members see everything
                AccessRule.make(
                    "*",
                    attrs=["objectclass", "hn", "system", "url", "ttl",
                           "notificationtype", "regsource", "perf", "period",
                           "description", "o"],
                ),
            ],
            default_allow=False,
        )
        tb = GridTestbed(seed=66)
        giis = tb.add_giis(
            "vo-giis",
            "o=Grid",
            vo_name="SecVO",
            credential=GIIS_CRED,
            policy=giis_policy,
            authenticator=GsiAuthenticator(TRUST, "ldap://vo-giis:2135/"),
        )
        policy = attribute_restricted_policy(
            public_attrs=["objectclass", "hn", "system", "perf", "period"],
            restricted_attrs=["load1", "load5", "load15"],
            allowed_identities=["CN=vo-giis"],
        )
        gris = tb.standard_gris(
            "s0",
            "hn=s0, o=Grid",
            policy=policy,
            authenticator=GsiAuthenticator(TRUST, "ldap://s0:2135/"),
        )
        tb.register(gris, giis, interval=15.0, ttl=45.0, name="s0")
        tb.run(1.0)

        anon = tb.client("anon", giis)
        out = anon.search("o=Grid", filter="(objectclass=loadaverage)")
        assert out.entries and not out.entries[0].has("load5")

        alice = tb.client("alice", giis)
        token = make_token(ALICE, "ldap://vo-giis:2135/", now=tb.sim.now())
        alice.bind(mechanism="GSI", credentials=token)
        out = alice.search("o=Grid", filter="(objectclass=loadaverage)")
        assert out.entries and out.entries[0].has("load5")

    def test_pull_indexes_benefit_from_credential(self):
        """Specialized directories pulling with the trusted credential
        index the restricted attributes too."""
        from repro.giis import RelationalDirectory

        tb = GridTestbed(seed=66)
        giis = tb.add_giis(
            "vo-giis", "o=Grid", vo_name="SecVO", credential=GIIS_CRED
        )
        index = RelationalDirectory()
        giis.backend.add_index(index)
        policy = attribute_restricted_policy(
            public_attrs=["objectclass", "hn", "system", "perf", "period"],
            restricted_attrs=["load1", "load5", "load15"],
            allowed_identities=["CN=vo-giis"],
        )
        gris = tb.standard_gris(
            "s0",
            "hn=s0, o=Grid",
            policy=policy,
            authenticator=GsiAuthenticator(TRUST, "ldap://s0:2135/"),
        )
        tb.register(gris, giis, interval=15.0, ttl=45.0, name="s0")
        tb.run(2.0)
        loads = index.table("loadaverage")
        assert len(loads) == 1
        assert loads.rows[0].get("load5") is not None
