"""PR-9 self-monitoring layer: exposition, time-series, health, fleet.

Covers the observability tentpole end to end:

* Prometheus text exposition — golden-file comparison plus a
  line-grammar lint and a parse round-trip;
* :class:`TimeSeriesRecorder` — ring wraparound, counter rates, and
  windowed histogram quantiles under the deterministic simulator clock;
* one-snapshot consistency — ``collect()`` under a concurrent writer
  and ``cn=monitor`` rendering from a single pass;
* :class:`HealthModel` — threshold verdicts and the Mds-Server-* map;
* the self-provider — health entries appearing in a chained GIIS
  search over real sockets, on both wire transports.
"""

import pathlib
import re
import threading
import time

import pytest

from repro.giis.core import GiisBackend
from repro.grip.messages import GrrpMessage
from repro.gris.core import GrisBackend
from repro.ldap.client import LdapClient
from repro.ldap.dit import Scope
from repro.ldap.server import LdapServer
from repro.net import TRANSPORTS, make_endpoint
from repro.net.clock import WallClock
from repro.net.sim import Simulator
from repro.obs import (
    HealthModel,
    HealthThresholds,
    MetricsHttpServer,
    MetricsRegistry,
    MonitorBackend,
    TimeSeriesRecorder,
    parse_exposition,
    render_exposition,
)

GOLDEN = pathlib.Path(__file__).parent / "data" / "exposition.golden"


def golden_registry() -> MetricsRegistry:
    """The fixed instrument population behind the golden file."""
    m = MetricsRegistry()
    m.counter("ldap.requests", {"op": "search"}).inc(42)
    m.counter("ldap.requests", {"op": "add"}).inc(3)
    m.gauge("ldap.executor.queue.depth", {"pool": "front"}).set(7)
    m.gauge_fn("storage.entries", lambda: 1234.0)
    h = m.histogram(
        "ldap.request.seconds", {"op": "search"},
        buckets=(0.001, 0.01, 0.1, 1.0),
    )
    for v in (0.0005, 0.005, 0.005, 0.05, 2.0):
        h.observe(v)
    m.counter("weird-family.name", {"la-bel": 'quo"te\\back\nnl'}).inc(1)
    return m


class TestExposition:
    def test_golden_file(self):
        text = render_exposition(golden_registry().collect())
        assert text == GOLDEN.read_text()

    def test_line_grammar(self):
        """Every emitted line matches the 0.0.4 grammar exactly."""
        help_re = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
        type_re = re.compile(
            r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
            r"(counter|gauge|histogram|summary|untyped)$"
        )
        sample_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*")*\})?'
            r" (NaN|[+-]?Inf|-?\d+(\.\d+)?([eE][+-]?\d+)?)$"
        )
        text = render_exposition(golden_registry().collect())
        assert text.endswith("\n")
        seen_samples = 0
        for line in text.splitlines():
            if line.startswith("# HELP"):
                assert help_re.match(line), line
            elif line.startswith("# TYPE"):
                assert type_re.match(line), line
            else:
                assert sample_re.match(line), line
                seen_samples += 1
        assert seen_samples >= 10

    def test_parse_roundtrip(self):
        families = parse_exposition(
            render_exposition(golden_registry().collect())
        )
        assert families["ldap_requests"]["type"] == "counter"
        values = {
            labels["op"]: value
            for _n, labels, value in families["ldap_requests"]["samples"]
        }
        assert values == {"search": 42.0, "add": 3.0}

        hist = families["ldap_request_seconds"]
        assert hist["type"] == "histogram"
        buckets = {
            labels["le"]: value
            for name, labels, value in hist["samples"]
            if name.endswith("_bucket")
        }
        assert buckets["+Inf"] == 5.0 and buckets["0.01"] == 3.0
        count = [
            v for n, _l, v in hist["samples"] if n.endswith("_count")
        ]
        assert count == [5.0]

        # escaping survives the round trip
        weird = families["weird_family_name"]["samples"][0]
        assert weird[1]["la_bel"] == 'quo"te\\back\nnl'

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("this is not { a metric line\n")
        with pytest.raises(ValueError):
            parse_exposition("# TYPE foo flavor\n")

    def test_http_server_serves_consistent_page(self):
        m = golden_registry()
        server = MetricsHttpServer(m)
        try:
            port = server.start(0)
            import urllib.request

            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5
            ) as resp:
                assert "version=0.0.4" in resp.headers["Content-Type"]
                body = resp.read().decode("utf-8")
            assert parse_exposition(body)["ldap_requests"]["type"] == "counter"
        finally:
            server.close()


class TestTimeSeries:
    def test_ring_wraparound(self):
        sim = Simulator()
        m = MetricsRegistry()
        c = m.counter("reqs")
        rec = TimeSeriesRecorder(m, sim, interval=1.0, capacity=4)
        for i in range(10):
            c.inc()
            rec.sample()
            sim.run_for(1.0)
        assert rec.samples_taken == 10
        points = rec.series("reqs")
        # only the newest `capacity` rows survive, oldest first
        assert len(points) == 4
        assert [v for _t, v in points] == [7.0, 8.0, 9.0, 10.0]

    def test_rate_under_fake_clock(self):
        sim = Simulator()
        m = MetricsRegistry()
        c = m.counter("reqs")
        rec = TimeSeriesRecorder(m, sim, interval=1.0, capacity=100)
        rec.start()
        for _ in range(10):
            sim.run_for(1.0)  # fires the tick, then we add load
            c.inc(5)
        rec.stop()
        assert rec.samples_taken == 10
        # 5 increments per simulated second between samples
        assert rec.rate("reqs") == pytest.approx(5.0)
        # a narrow window sees the same steady rate
        assert rec.rate("reqs", window=3.0) == pytest.approx(5.0)
        # stopping really stops the resampling loop
        taken = rec.samples_taken
        sim.run_for(5.0)
        assert rec.samples_taken == taken

    def test_windowed_histogram_quantiles(self):
        sim = Simulator()
        m = MetricsRegistry()
        h = m.histogram("lat", buckets=(0.001, 0.01, 0.1, 1.0))
        rec = TimeSeriesRecorder(m, sim, interval=1.0, capacity=100)
        rec.sample()  # t=0 baseline
        # old traffic: slow requests that must NOT pollute the window
        for _ in range(100):
            h.observe(0.5)
        sim.run_for(10.0)
        rec.sample()  # t=10: the slow wave landed in (0, 10]
        # recent traffic: fast requests only
        for _ in range(100):
            h.observe(0.005)
        sim.run_for(1.0)
        rec.sample()  # t=11: the fast wave landed in (10, 11]
        stats = rec.window_stats("lat", window=2.0)
        assert stats is not None
        assert stats["count"] == 100.0
        assert stats["mean"] == pytest.approx(0.005)
        # every windowed observation sits in the (0.001, 0.01] bucket
        assert 0.001 < stats["p95"] <= 0.01
        # the full-history window still sees the old slow half
        full = rec.window_stats("lat", window=None)
        assert full["count"] == 200.0
        assert full["p95"] > 0.1

    def test_window_stats_needs_two_samples(self):
        sim = Simulator()
        m = MetricsRegistry()
        m.histogram("lat").observe(0.1)
        rec = TimeSeriesRecorder(m, sim, interval=1.0)
        rec.sample()
        assert rec.window_stats("lat") is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(MetricsRegistry(), Simulator(), interval=0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(MetricsRegistry(), Simulator(), capacity=1)


class TestCollectConsistency:
    def test_collect_under_concurrent_writes(self):
        """Snapshots taken during a write storm stay monotone."""
        m = MetricsRegistry()
        c = m.counter("hits")
        h = m.histogram("lat", buckets=(0.01, 0.1))
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                c.inc()
                h.observe(0.05)

        writer = threading.Thread(target=hammer, daemon=True)
        writer.start()
        try:
            last_hits = -1.0
            for _ in range(200):
                snap = m.collect()
                hits = snap.value("hits")
                assert hits >= last_hits
                last_hits = hits
                hist = snap.get("lat").data
                # internally consistent: +Inf bucket equals the count
                assert hist["buckets"][-1][1] == hist["count"]
        finally:
            stop.set()
            writer.join(timeout=5)

    def test_monitor_entries_single_snapshot(self):
        m = golden_registry()
        clock = Simulator()
        health = HealthModel(m, clock, server_id="unit-test")
        backend = MonitorBackend(m, server_name="unit", health=health)
        entries = backend.entries()
        dns = [str(e.dn) for e in entries]
        assert any(d.startswith("cn=health") for d in dns)
        # one entry per instrument plus root and health
        assert len(entries) == len(m.collect()) + 2
        hist = next(
            e for e in entries
            if e.first("mdsmetricname", "").startswith("ldap.request.seconds")
        )
        # interpolated quantiles from the shared estimator
        assert float(hist.first("mdsp50")) == pytest.approx(0.00775)
        assert float(hist.first("mdsp99")) == 2.0  # clamps to observed max


class TestHealthModel:
    def test_healthy_when_quiet(self):
        m = MetricsRegistry()
        health = HealthModel(m, Simulator(), server_id="s1")
        report = health.report()
        assert report.status == "healthy"
        assert report.live and report.ready

    def test_queue_saturation_escalates(self):
        m = MetricsRegistry()
        m.gauge("ldap.executor.queue.depth", {"pool": "x"}).set(80)
        m.gauge("ldap.executor.queue.limit", {"pool": "x"}).set(100)
        health = HealthModel(m, Simulator(), server_id="s1")
        report = health.report()
        assert report.status == "degraded"
        assert report.ready  # degraded still serves

        m.gauge("ldap.executor.queue.depth", {"pool": "x"}).set(99)
        report = health.report()
        assert report.status == "unhealthy"
        assert report.live and not report.ready

    def test_thresholds_are_tunable(self):
        m = MetricsRegistry()
        m.gauge("ldap.executor.queue.depth", {"pool": "x"}).set(50)
        m.gauge("ldap.executor.queue.limit", {"pool": "x"}).set(100)
        lax = HealthThresholds(
            queue_saturation_warn=0.9, queue_saturation_crit=0.99
        )
        strict = HealthThresholds(
            queue_saturation_warn=0.1, queue_saturation_crit=0.2
        )
        sim = Simulator()
        assert HealthModel(m, sim, thresholds=lax).report().status == "healthy"
        assert (
            HealthModel(m, sim, thresholds=strict).report().status
            == "unhealthy"
        )

    def test_attrs_shape(self):
        m = MetricsRegistry()
        m.counter("ldap.requests", {"op": "search"}).inc(10)
        sim = Simulator()
        health = HealthModel(m, sim, server_id="giis-a")
        sim.run_until(5.0)  # 5s of uptime after the model starts
        attrs = health.attrs()
        assert attrs["Mds-Server-Id"] == "giis-a"
        assert attrs["Mds-Server-Health"] == "healthy"
        assert attrs["Mds-Server-Live"] == "TRUE"
        assert attrs["Mds-Server-Rps"] == pytest.approx(2.0)  # 10 req / 5 s
        entry = health.entry("mds-server-name=giis-a, o=grid")
        assert "mdsserver" in entry.get("objectclass")


class _WireFleet:
    """One self-monitoring GRIS chained behind a self-monitoring GIIS."""

    def __init__(self, transport: str):
        self.clock = WallClock()
        self.closers = []

        gris_metrics = MetricsRegistry()
        gris = GrisBackend("o=Grid", self.clock, metrics=gris_metrics)
        gris_health = HealthModel(
            gris_metrics, self.clock, server_id="gris-1"
        )
        gris.enable_self_monitor(gris_health)
        gris_endpoint = make_endpoint(transport)
        self.closers.append(gris_endpoint.close)
        gris_server = LdapServer(gris, clock=self.clock)
        gris_port = gris_endpoint.listen(0, gris_server.handle_connection)

        giis_metrics = MetricsRegistry()
        chain = make_endpoint(transport)
        self.closers.append(chain.close)
        giis = GiisBackend(
            "o=Grid",
            clock=self.clock,
            connector=lambda url: chain.connect((url.host, url.port)),
            metrics=giis_metrics,
        )
        self.closers.append(giis.shutdown)
        now = self.clock.now()
        giis.apply_grrp(
            GrrpMessage(
                service_url=f"ldap://127.0.0.1:{gris_port}/",
                timestamp=now,
                valid_until=now + 3600.0,
                metadata={"suffix": "o=Grid"},
            )
        )
        giis_health = HealthModel(
            giis_metrics, self.clock, server_id="giis-1"
        )
        giis.enable_self_monitor(giis_health)
        front = make_endpoint(transport)
        self.closers.append(front.close)
        giis_server = LdapServer(giis, clock=self.clock)
        self.giis_port = front.listen(0, giis_server.handle_connection)
        self.client_endpoint = make_endpoint(transport)
        self.closers.append(self.client_endpoint.close)

    def connect(self):
        return self.client_endpoint.connect(("127.0.0.1", self.giis_port))

    def close(self):
        for close in reversed(self.closers):
            try:
                close()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass


@pytest.mark.parametrize("transport", sorted(TRANSPORTS))
def test_self_provider_visible_through_chained_giis(transport):
    """Fleet health aggregates through ordinary GRIP chaining: one
    subtree search at the GIIS returns the GIIS's own health entry AND
    the chained GRIS's, on either wire transport."""
    fleet = _WireFleet(transport)
    try:
        client = LdapClient(fleet.connect())
        try:
            result = client.search(
                "o=Grid",
                Scope.SUBTREE,
                "(objectclass=mdsserver)",
                timeout=30.0,
            )
        finally:
            client.unbind()
        ids = sorted(
            e.first("Mds-Server-Id") for e in result.entries
        )
        assert ids == ["giis-1", "gris-1"]
        for entry in result.entries:
            assert entry.first("Mds-Server-Health") in (
                "healthy", "degraded", "unhealthy"
            )
            assert float(entry.first("Mds-Server-Uptime-Seconds")) >= 0.0
            assert entry.first("Mds-Server-Ready") in ("TRUE", "FALSE")
    finally:
        fleet.close()


def test_recorder_on_wall_clock_smoke():
    """start()/stop() on the real clock: at least one interval fires."""
    m = MetricsRegistry()
    m.counter("reqs").inc()
    rec = TimeSeriesRecorder(m, WallClock(), interval=0.05, capacity=10)
    rec.start()
    try:
        deadline = time.time() + 5.0
        while rec.samples_taken < 2 and time.time() < deadline:
            time.sleep(0.02)
    finally:
        rec.stop()
    assert rec.samples_taken >= 2
    assert len(rec.series("reqs")) >= 2
