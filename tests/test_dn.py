"""Unit and property tests for distinguished names."""

import pytest
from hypothesis import given, strategies as st

from repro.ldap.dn import DN, RDN, DNError, common_suffix


class TestRdn:
    def test_parse_simple(self):
        r = RDN.parse("hn=hostX")
        assert r.attr == "hn"
        assert r.value == "hostX"

    def test_case_insensitive_equality(self):
        assert RDN.parse("HN=HostX") == RDN.parse("hn=hostx")

    def test_whitespace_normalized(self):
        assert RDN.parse("o=Argonne  National   Lab") == RDN.parse(
            "o=argonne national lab"
        )

    def test_multivalued(self):
        r = RDN.parse("cn=a+sn=b")
        assert len(r.avas) == 2
        # order-insensitive equality
        assert r == RDN.parse("sn=b+cn=a")

    def test_escaped_comma(self):
        r = RDN.parse(r"cn=Foster\, Ian")
        assert r.value == "Foster, Ian"

    def test_escaped_hex(self):
        r = RDN.parse(r"cn=a\2ab")
        assert r.value == "a*b"

    def test_trailing_hex_escape(self):
        # `\xx` at the very end of the value must be read as hex, not
        # rejected by an off-by-one bound check
        r = RDN.parse(r"cn=a\2a")
        assert r.value == "a*"
        assert RDN.parse(r"cn=a\ff").value == "a\xff"

    def test_trailing_incomplete_hex_escape(self):
        with pytest.raises(DNError):
            RDN.parse("cn=a\\f")

    def test_dangling_backslash(self):
        with pytest.raises(DNError):
            RDN.parse("cn=a\\")

    def test_roundtrip_with_special_chars(self):
        r = RDN.single("cn", "x=y, z+w")
        assert RDN.parse(str(r)) == r

    def test_missing_equals(self):
        with pytest.raises(DNError):
            RDN.parse("justtext")

    def test_empty_attr(self):
        with pytest.raises(DNError):
            RDN.parse("=value")

    def test_bad_attr_chars(self):
        with pytest.raises(DNError):
            RDN.parse("a b=c")


class TestDn:
    def test_parse_multi_rdn(self):
        dn = DN.parse("perf=load5, hn=hostX")
        assert len(dn) == 2
        assert dn.rdn.attr == "perf"

    def test_root(self):
        assert DN.parse("") == DN.root()
        assert DN.root().is_root()

    def test_str_roundtrip(self):
        dn = DN.parse("queue=default, hn=hostX, o=O1")
        assert DN.parse(str(dn)) == dn

    def test_parent_child(self):
        dn = DN.parse("hn=hostX, o=O1")
        assert dn.parent() == DN.parse("o=O1")
        assert DN.parse("o=O1").child("hn=hostX") == dn

    def test_root_parent_raises(self):
        with pytest.raises(DNError):
            DN.root().parent()

    def test_descendant(self):
        child = DN.parse("perf=load5, hn=hostX, o=O1")
        assert child.is_descendant_of(DN.parse("o=O1"))
        assert child.is_descendant_of(DN.parse("hn=hostX, o=O1"))
        assert not child.is_descendant_of(child)
        assert child.is_within(child)
        assert child.is_within(DN.root())

    def test_not_descendant_of_sibling(self):
        assert not DN.parse("hn=a, o=O1").is_descendant_of(DN.parse("o=O2"))

    def test_depth_below(self):
        dn = DN.parse("perf=load5, hn=hostX, o=O1")
        assert dn.depth_below(DN.parse("o=O1")) == 2
        assert dn.depth_below(dn) == 0
        with pytest.raises(DNError):
            DN.parse("o=O2").depth_below(DN.parse("o=O1"))

    def test_relative_to(self):
        dn = DN.parse("hn=hostX, o=O1")
        rel = dn.relative_to(DN.parse("o=O1"))
        assert [str(r) for r in rel] == ["hn=hostX"]

    def test_ancestors(self):
        dn = DN.parse("a=1, b=2, c=3")
        assert [str(d) for d in dn.ancestors()] == ["b=2, c=3", "c=3", ""]

    def test_case_insensitive_hash(self):
        a = DN.parse("HN=HostX, O=o1")
        b = DN.parse("hn=hostx, o=O1")
        assert a == b
        assert hash(a) == hash(b)

    def test_empty_rdn_rejected(self):
        with pytest.raises(DNError):
            DN.parse("a=1,,b=2")

    def test_semicolon_separator(self):
        assert DN.parse("a=1; b=2") == DN.parse("a=1, b=2")


class TestCommonSuffix:
    def test_shared_org(self):
        dns = [DN.parse("hn=a, o=O1"), DN.parse("hn=b, o=O1")]
        assert common_suffix(dns) == DN.parse("o=O1")

    def test_disjoint(self):
        dns = [DN.parse("o=O1"), DN.parse("o=O2")]
        assert common_suffix(dns) == DN.root()

    def test_empty_list(self):
        assert common_suffix([]) == DN.root()

    def test_single(self):
        dn = DN.parse("a=1, b=2")
        assert common_suffix([dn]) == dn


_attr = st.sampled_from(["cn", "hn", "o", "ou", "perf", "queue", "store"])
_value = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1,
    max_size=12,
).filter(lambda s: s.strip() == s and s.strip() != "")


@st.composite
def _dns(draw):
    n = draw(st.integers(min_value=0, max_value=4))
    rdns = tuple(
        RDN.single(draw(_attr), draw(_value)) for _ in range(n)
    )
    return DN(rdns)


class TestDnProperties:
    @given(_dns())
    def test_str_parse_roundtrip(self, dn):
        assert DN.parse(str(dn)) == dn

    @given(_dns(), _dns())
    def test_concatenation_is_within(self, a, b):
        joined = DN(a.rdns + b.rdns)
        assert joined.is_within(b)

    @given(_dns())
    def test_parent_of_child_is_self(self, dn):
        child = dn.child(RDN.single("cn", "x"))
        assert child.parent() == dn

    @given(_dns())
    def test_normalization_idempotent(self, dn):
        reparsed = DN.parse(str(dn))
        assert reparsed.normalized() == dn.normalized()
