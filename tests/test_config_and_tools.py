"""Tests for GRIS configuration files and the CLI tools."""

import io
import json
import time

import pytest

from repro.gris.config import (
    ConfigError,
    build_gris,
    load_config,
)
from repro.ldap.backend import RequestContext
from repro.ldap.dit import Scope
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import SearchRequest
from repro.net.sim import Simulator
from repro.tools.grid_info_search import main as search_main
from repro.tools.grid_info_server import main as server_main, start_server

CTX = RequestContext()


def write_config(tmp_path, **overrides):
    config = {
        "suffix": "hn=cfg-host, o=Demo",
        "providers": [
            {
                "type": "static-host",
                "hostname": "cfg-host",
                "cpu_count": 8,
                "memory_mb": 2048,
                "base": "",
            },
            {"type": "dynamic-host", "hostname": "cfg-host", "base": "", "cache_ttl": 5},
            {
                "type": "storage",
                "hostname": "cfg-host",
                "store": "root",
                "path": "/",
                "base": "",
            },
            {"type": "queue", "hostname": "cfg-host", "base": ""},
        ],
    }
    config.update(overrides)
    path = tmp_path / "gris.json"
    path.write_text(json.dumps(config))
    return path


class TestConfig:
    def test_load_and_build(self, tmp_path):
        path = write_config(tmp_path)
        config = load_config(path, load_sensor=lambda: (0.1, 0.2, 0.3))
        assert len(config.providers) == 4
        gris = build_gris(config, clock=Simulator())
        req = SearchRequest(
            base="hn=cfg-host, o=Demo",
            scope=Scope.SUBTREE,
            filter=parse_filter("(objectclass=*)"),
        )
        out = gris.search(req, CTX)
        classes = {oc for e in out.entries for oc in e.object_classes}
        assert {"computer", "loadaverage", "filesystem", "queue"} <= classes

    def test_static_host_values(self, tmp_path):
        path = write_config(tmp_path)
        config = load_config(path, load_sensor=lambda: (0, 0, 0))
        gris = build_gris(config, clock=Simulator())
        req = SearchRequest(
            base="hn=cfg-host, o=Demo",
            scope=Scope.BASE,
            filter=parse_filter("(objectclass=*)"),
        )
        entry = gris.search(req, CTX).entries[0]
        assert entry.first("cpucount") == "8"
        assert entry.first("memorysize") == "2048 MB"

    def test_ldif_provider(self, tmp_path):
        (tmp_path / "site.ldif").write_text(
            "dn: ou=site-info\nobjectclass: organizationalunit\nou: site-info\n"
        )
        path = write_config(
            tmp_path,
            providers=[{"type": "ldif", "file": "site.ldif", "name": "site"}],
        )
        config = load_config(path)
        gris = build_gris(config, clock=Simulator())
        req = SearchRequest(
            base="hn=cfg-host, o=Demo",
            scope=Scope.SUBTREE,
            filter=parse_filter("(ou=site-info)"),
        )
        assert len(gris.search(req, CTX).entries) == 1

    def test_registrations_parsed(self, tmp_path):
        path = write_config(
            tmp_path,
            registrations=[
                {
                    "directory": "ldap://giis:2135/o=Grid",
                    "interval": 10,
                    "ttl": 30,
                    "name": "cfg-host",
                    "vo": "DemoVO",
                }
            ],
        )
        config = load_config(path)
        assert len(config.registrations) == 1
        spec = config.registrations[0]
        assert spec.directory == "ldap://giis:2135/o=Grid"
        assert spec.ttl == 30.0

    @pytest.mark.parametrize(
        "broken",
        [
            {"suffix": "not a=dn==broken,"},
            {"providers": [{"type": "warp-drive"}]},
            {"providers": [{"type": "static-host"}]},  # missing hostname
            {"providers": [{"type": "ldif", "file": "missing.ldif"}]},
            {"registrations": [{"interval": 5}]},  # missing directory
        ],
    )
    def test_malformed_configs(self, tmp_path, broken):
        path = write_config(tmp_path, **broken)
        with pytest.raises(ConfigError):
            load_config(path)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="invalid JSON"):
            load_config(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_config(tmp_path / "nope.json")

    def test_non_object_config(self, tmp_path):
        path = tmp_path / "arr.json"
        path.write_text("[1,2,3]")
        with pytest.raises(ConfigError, match="suffix"):
            load_config(path)


class TestCliTools:
    # The reactor is the default transport; the threaded one must stay
    # wired through the same flag.
    @pytest.fixture(params=["reactor", "threads"])
    def running_server(self, request, tmp_path):
        path = write_config(tmp_path)
        endpoint, port, registrants, server = start_server(
            str(path), port=0, transport=request.param
        )
        yield port
        endpoint.close()

    def test_search_cli_ldif_output(self, running_server):
        out = io.StringIO()
        rc = search_main(
            [
                "-H",
                "127.0.0.1",
                "-p",
                str(running_server),
                "-b",
                "hn=cfg-host, o=Demo",
                "-s",
                "sub",
                "(objectclass=computer)",
            ],
            out=out,
        )
        assert rc == 0
        text = out.getvalue()
        assert "dn: hn=cfg-host, o=Demo" in text
        assert "# 1 entries returned" in text

    def test_search_cli_attr_selection(self, running_server):
        out = io.StringIO()
        rc = search_main(
            [
                "-p",
                str(running_server),
                "-b",
                "hn=cfg-host, o=Demo",
                "(objectclass=computer)",
                "cpucount",
            ],
            out=out,
        )
        assert rc == 0
        assert "cpucount: 8" in out.getvalue()
        assert "memorysize" not in out.getvalue()

    def test_search_cli_no_such_object(self, running_server):
        out = io.StringIO()
        rc = search_main(
            ["-p", str(running_server), "-b", "o=Nowhere", "-s", "base"],
            out=out,
        )
        assert rc == 1

    def test_search_cli_connection_refused(self):
        rc = search_main(["-p", "1", "-b", ""])
        assert rc == 2

    def test_server_cli_bad_config(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        rc = server_main(["--config", str(bad), "--port", "0"], run_forever=False)
        assert rc == 2

    def test_server_cli_starts(self, tmp_path):
        path = write_config(tmp_path)
        rc = server_main(["--config", str(path), "--port", "0"], run_forever=False)
        assert rc == 0

    def test_server_registers_with_directory(self, tmp_path):
        """End-to-end over real TCP: a config-driven GRIS registers with
        a GIIS, which then chains queries to it."""
        from repro.giis.core import GiisBackend
        from repro.ldap.server import LdapServer
        from repro.net.clock import WallClock
        from repro.net.tcp import TcpEndpoint

        clock = WallClock()
        giis_endpoint = TcpEndpoint()
        giis = GiisBackend(
            "o=Demo",
            clock=clock,
            connector=lambda url: giis_endpoint.connect(url.address),
        )
        giis_server = LdapServer(giis, clock=clock)
        giis_port = giis_endpoint.listen(0, giis_server.handle_connection)

        path = write_config(
            tmp_path,
            registrations=[
                {
                    "directory": f"ldap://127.0.0.1:{giis_port}/o=Demo",
                    "interval": 1,
                    "ttl": 10,
                    "name": "cfg-host",
                }
            ],
        )
        gris_endpoint, gris_port, registrants, _ = start_server(str(path), port=0)
        try:
            deadline = time.time() + 5.0
            while not giis.registry.active() and time.time() < deadline:
                time.sleep(0.02)
            active = giis.registry.active()
            assert len(active) == 1
            assert f":{gris_port}" in active[0].service_url

            # and the GIIS can chain a query through to the GRIS
            from repro.ldap.client import LdapClient

            client = LdapClient(giis_endpoint.connect(("127.0.0.1", giis_port)))
            out = client.search("o=Demo", filter="(objectclass=computer)")
            assert len(out.entries) == 1
            assert out.entries[0].first("hn") == "cfg-host"
            client.unbind()
        finally:
            for registrant in registrants:
                registrant.stop()
            gris_endpoint.close()
            giis_endpoint.close()


class TestCliGsiAuth:
    def test_search_cli_with_credential(self, tmp_path):
        """grid-info-search --credential performs a GSI bind over TCP."""
        import random
        import time

        from repro.ldap.backend import DitBackend
        from repro.ldap.dit import DIT
        from repro.ldap.entry import Entry
        from repro.ldap.server import LdapServer
        from repro.net.tcp import TcpEndpoint
        from repro.security import (
            CertificateAuthority,
            GsiAuthenticator,
            TrustStore,
            authenticated_policy,
            credential_to_json,
        )

        rng = random.Random(7)
        # real wall-clock validity: the server checks against time.time()
        ca = CertificateAuthority("CN=CliCA", rng=rng, bits=256, now=time.time())
        alice = ca.issue("CN=alice", rng=rng, bits=256, now=time.time())
        cred_file = tmp_path / "alice.cred"
        cred_file.write_text(credential_to_json(alice))

        endpoint = TcpEndpoint()
        dit = DIT()
        dit.add(Entry("o=Sec", objectclass="organization", o="Sec"))
        server_holder = {}

        def start(port_placeholder):
            auth = GsiAuthenticator(
                TrustStore([ca.certificate]),
                f"ldap://127.0.0.1:{port_placeholder}/",
                clock=time.time,
            )
            server = LdapServer(
                DitBackend(dit), authenticator=auth, policy=authenticated_policy()
            )
            return server

        # bind the listener first to learn the port, then set the target
        import socket as _socket

        probe = _socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        server = start(port)
        endpoint.listen(port, server.handle_connection)
        try:
            # anonymous: policy hides everything
            out = io.StringIO()
            rc = search_main(["-p", str(port), "-b", "o=Sec"], out=out)
            assert rc == 0
            assert "# 0 entries returned" in out.getvalue()

            # authenticated via --credential: entry visible
            out = io.StringIO()
            rc = search_main(
                ["-p", str(port), "-b", "o=Sec", "--credential", str(cred_file)],
                out=out,
            )
            assert rc == 0
            assert "dn: o=Sec" in out.getvalue()

            # bad credential file
            bad = tmp_path / "bad.cred"
            bad.write_text("junk")
            rc = search_main(
                ["-p", str(port), "-b", "o=Sec", "--credential", str(bad)]
            )
            assert rc == 2
        finally:
            endpoint.close()

    def test_trust_store_roundtrip(self):
        import random

        from repro.security import CertificateAuthority, TrustStore
        from repro.security.gsi import trust_store_from_json, trust_store_to_json

        ca = CertificateAuthority("CN=X", rng=random.Random(2), bits=256)
        trust = TrustStore([ca.certificate])
        back = trust_store_from_json(trust_store_to_json(trust))
        assert back.anchors() == trust.anchors()

    def test_trust_store_malformed(self):
        from repro.security import AuthError
        from repro.security.gsi import trust_store_from_json

        import pytest as _pytest

        with _pytest.raises(AuthError):
            trust_store_from_json("nope")
