"""Unit tests for the backend layer and persistent-search controls."""

from hypothesis import given, strategies as st

from repro.ldap.backend import (
    Backend,
    ChangeType,
    DitBackend,
    RequestContext,
    _in_scope,
)
from repro.ldap.dit import DIT, Scope
from repro.ldap.dn import DN
from repro.ldap.entry import Entry
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import (
    AddRequest,
    Control,
    ModifyRequest,
    ResultCode,
    SearchRequest,
)
from repro.ldap.psearch import (
    ENTRY_CHANGE_OID,
    PSEARCH_OID,
    EntryChangeNotification,
    PersistentSearchControl,
)
from repro.ldap.schema import GRID_SCHEMA

CTX = RequestContext(identity="CN=test")


def backend():
    b = DitBackend(DIT())
    b.dit.add(Entry("o=Grid", objectclass="organization", o="Grid"))
    b.dit.add(
        Entry("hn=a, o=Grid", objectclass="computer", hn="a", load5="1.0")
    )
    return b


class TestDitBackend:
    def test_search_ok(self):
        out = backend().search(
            SearchRequest(base="o=Grid", scope=Scope.SUBTREE), CTX
        )
        assert out.result.ok and len(out.entries) == 2

    def test_search_bad_base(self):
        out = backend().search(SearchRequest(base="!!!"), CTX)
        assert out.result.code == ResultCode.PROTOCOL_ERROR

    def test_search_missing_base(self):
        out = backend().search(
            SearchRequest(base="o=Nope", scope=Scope.BASE), CTX
        )
        assert out.result.code == ResultCode.NO_SUCH_OBJECT

    def test_add_and_duplicate(self):
        b = backend()
        req = AddRequest.from_entry(Entry("hn=b, o=Grid", objectclass="computer", hn="b"))
        assert b.add(req, CTX).ok
        assert b.add(req, CTX).code == ResultCode.ENTRY_ALREADY_EXISTS

    def test_add_schema_violation(self):
        b = DitBackend(DIT(schema=GRID_SCHEMA))
        req = AddRequest.from_entry(Entry("hn=x", objectclass="computer"))
        assert b.add(req, CTX).code == ResultCode.OBJECT_CLASS_VIOLATION

    def test_modify_unknown_op(self):
        b = backend()
        result = b.modify(ModifyRequest("hn=a, o=Grid", ((9, "x", ("v",)),)), CTX)
        assert result.code == ResultCode.OTHER

    def test_delete_nonleaf(self):
        b = backend()
        result = b.delete("o=Grid", CTX)
        assert result.code == ResultCode.UNWILLING_TO_PERFORM

    def test_base_backend_defaults(self):
        class Minimal(Backend):
            def search(self, req, ctx):
                raise NotImplementedError

        b = Minimal()
        assert b.add(AddRequest(), CTX).code == ResultCode.UNWILLING_TO_PERFORM
        assert b.modify(ModifyRequest(), CTX).code == ResultCode.UNWILLING_TO_PERFORM
        assert b.delete("cn=x", CTX).code == ResultCode.UNWILLING_TO_PERFORM
        assert b.subscribe(SearchRequest(), CTX, lambda e, c: None) is None

    def test_submit_search_default_bridges(self):
        results = []
        handle = backend().submit_search(
            SearchRequest(base="o=Grid", scope=Scope.SUBTREE), CTX, results.append
        )
        assert len(results) == 1 and results[0].result.ok
        assert not handle.cancelled


class TestSubscriptionSemantics:
    def test_change_type_masking(self):
        b = backend()
        changes = []
        b.subscribe(
            SearchRequest(base="o=Grid", scope=Scope.SUBTREE),
            CTX,
            lambda e, c: changes.append(c),
            change_types=ChangeType.DELETE,
        )
        b.add(AddRequest.from_entry(Entry("hn=c, o=Grid", objectclass="computer", hn="c")), CTX)
        b.delete("hn=c, o=Grid", CTX)
        assert changes == [ChangeType.DELETE]

    def test_scope_respected(self):
        b = backend()
        changes = []
        b.subscribe(
            SearchRequest(base="hn=a, o=Grid", scope=Scope.BASE),
            CTX,
            lambda e, c: changes.append(str(e.dn)),
        )
        b.add(AddRequest.from_entry(Entry("hn=zz, o=Grid", objectclass="computer", hn="zz")), CTX)
        b.modify(
            ModifyRequest("hn=a, o=Grid", ((ModifyRequest.OP_REPLACE, "load5", ("7",)),)),
            CTX,
        )
        assert changes == ["hn=a, o=Grid"]

    def test_filter_respected_for_modify(self):
        b = backend()
        changes = []
        b.subscribe(
            SearchRequest(
                base="o=Grid",
                scope=Scope.SUBTREE,
                filter=parse_filter("(load5>=5)"),
            ),
            CTX,
            lambda e, c: changes.append(float(e.first("load5"))),
        )
        b.modify(
            ModifyRequest("hn=a, o=Grid", ((ModifyRequest.OP_REPLACE, "load5", ("2",)),)),
            CTX,
        )
        assert changes == []
        b.modify(
            ModifyRequest("hn=a, o=Grid", ((ModifyRequest.OP_REPLACE, "load5", ("8",)),)),
            CTX,
        )
        assert changes == [8.0]

    def test_delete_notification_skips_filter(self):
        # the deleted entry's final state can't be filter-matched
        b = backend()
        changes = []
        b.subscribe(
            SearchRequest(
                base="o=Grid",
                scope=Scope.SUBTREE,
                filter=parse_filter("(nosuchattr=1)"),
            ),
            CTX,
            lambda e, c: changes.append(c),
        )
        b.delete("hn=a, o=Grid", CTX)
        assert changes == [ChangeType.DELETE]

    def test_cancel_is_idempotent(self):
        b = backend()
        sub = b.subscribe(
            SearchRequest(base="o=Grid", scope=Scope.SUBTREE), CTX, lambda e, c: None
        )
        assert b.subscription_count() == 1
        sub.cancel()
        sub.cancel()
        assert b.subscription_count() == 0


class TestInScope:
    def test_base(self):
        assert _in_scope(DN.parse("a=1"), DN.parse("a=1"), Scope.BASE)
        assert not _in_scope(DN.parse("b=2, a=1"), DN.parse("a=1"), Scope.BASE)

    def test_onelevel(self):
        base = DN.parse("a=1")
        assert _in_scope(DN.parse("b=2, a=1"), base, Scope.ONELEVEL)
        assert not _in_scope(base, base, Scope.ONELEVEL)
        assert not _in_scope(DN.parse("c=3, b=2, a=1"), base, Scope.ONELEVEL)
        assert not _in_scope(DN.root(), base, Scope.ONELEVEL)

    def test_subtree(self):
        base = DN.parse("a=1")
        assert _in_scope(base, base, Scope.SUBTREE)
        assert _in_scope(DN.parse("c=3, b=2, a=1"), base, Scope.SUBTREE)
        assert not _in_scope(DN.parse("a=2"), base, Scope.SUBTREE)


class TestPsearchCodec:
    def test_request_control_roundtrip(self):
        psc = PersistentSearchControl(
            change_types=ChangeType.ADD | ChangeType.DELETE,
            changes_only=True,
            return_ecs=False,
        )
        control = psc.to_control()
        assert control.oid == PSEARCH_OID
        assert PersistentSearchControl.from_control(control) == psc

    def test_find_in_controls(self):
        psc = PersistentSearchControl()
        controls = (Control("1.2.3"), psc.to_control())
        assert PersistentSearchControl.find(controls) == psc
        assert PersistentSearchControl.find((Control("1.2.3"),)) is None

    def test_entry_change_roundtrip(self):
        ec = EntryChangeNotification(ChangeType.MODIFY)
        control = ec.to_control()
        assert control.oid == ENTRY_CHANGE_OID
        assert EntryChangeNotification.from_control(control) == ec
        assert EntryChangeNotification.find((control,)) == ec
        assert EntryChangeNotification.find(()) is None

    @given(
        st.integers(min_value=1, max_value=15),
        st.booleans(),
        st.booleans(),
    )
    def test_control_roundtrip_property(self, change_types, changes_only, return_ecs):
        psc = PersistentSearchControl(change_types, changes_only, return_ecs)
        assert PersistentSearchControl.from_control(psc.to_control()) == psc
