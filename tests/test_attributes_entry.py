"""Tests for attribute matching rules and Entry behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.ldap.attributes import (
    AttributeValues,
    CASE_EXACT,
    CASE_IGNORE,
    NUMERIC,
    numeric_value,
    rule_for,
)
from repro.ldap.entry import Entry


class TestMatchingRules:
    def test_case_ignore_equality(self):
        assert CASE_IGNORE.equals("MIPS  Irix", "mips irix")

    def test_case_exact_distinguishes(self):
        assert not CASE_EXACT.equals("gram://HostX/", "gram://hostx/")

    def test_numeric_equality_across_formats(self):
        assert NUMERIC.equals("3.20", "3.2")

    def test_numeric_ordering(self):
        assert NUMERIC.compare("10", "9") > 0  # not lexicographic

    def test_case_ignore_numeric_ordering(self):
        # caseIgnore falls back to numeric compare for numbers too
        assert CASE_IGNORE.compare("10", "9") > 0

    def test_size_units(self):
        assert numeric_value("33515 MB") == 33515 * 1024**2
        assert numeric_value("1 GB") == 1024**3
        assert numeric_value("2.5") == 2.5
        assert numeric_value("not a number") is None

    def test_size_ordering_across_units(self):
        assert NUMERIC.compare("1 GB", "900 MB") > 0

    def test_rule_selection(self):
        assert rule_for("load5") is not rule_for("system")
        assert rule_for("URL").name == "caseExactMatch"
        assert rule_for("unknown-attr").name == "caseIgnoreMatch"


class TestAttributeValues:
    def test_dedup_under_rule(self):
        av = AttributeValues("system", ["Linux", "linux", "LINUX"])
        assert len(av) == 1
        assert av.first == "Linux"  # first-added form preserved

    def test_remove(self):
        av = AttributeValues("cn", ["a", "b"])
        assert av.remove("A")
        assert av.values() == ["b"]
        assert not av.remove("zzz")

    def test_contains(self):
        av = AttributeValues("cn", ["Alpha"])
        assert av.contains("alpha")
        assert not av.contains("beta")

    def test_equality_with_list(self):
        assert AttributeValues("cn", ["A", "b"]) == ["a", "B"]

    def test_copy_is_independent(self):
        av = AttributeValues("cn", ["a"])
        cp = av.copy()
        cp.add("b")
        assert len(av) == 1


class TestEntry:
    def make(self):
        return Entry(
            "hn=hostX, o=O1",
            objectclass=["computer"],
            system="mips irix",
            cpucount=4,
        )

    def test_construction_kinds(self):
        e = self.make()
        assert e.first("system") == "mips irix"
        assert e.get("cpucount") == ["4"]
        assert e.object_classes == ["computer"]

    def test_is_a(self):
        assert self.make().is_a("Computer")

    def test_put_replaces(self):
        e = self.make()
        e.put("system", "linux")
        assert e.get("system") == ["linux"]

    def test_put_empty_removes(self):
        e = self.make()
        e.put("system", [])
        assert not e.has("system")

    def test_add_remove_value(self):
        e = self.make()
        assert e.add_value("system", "linux")
        assert not e.add_value("system", "LINUX")
        assert e.remove_value("system", "mips  irix".replace("  ", " "))
        assert e.get("system") == ["linux"]

    def test_remove_last_value_drops_attr(self):
        e = Entry("cn=x", cn="x")
        e.remove_value("cn", "x")
        assert not e.has("cn")

    def test_project_subset(self):
        e = self.make()
        p = e.project(["system"])
        assert p.has("system")
        assert not p.has("cpucount")
        assert p.dn == e.dn

    def test_project_star(self):
        e = self.make()
        assert e.project(["*"]) == e
        assert e.project(None) == e

    def test_project_preserves_case_insensitivity(self):
        e = self.make()
        assert e.project(["SYSTEM"]).has("system")

    def test_copy_independent(self):
        e = self.make()
        c = e.copy()
        c.put("system", "linux")
        assert e.first("system") == "mips irix"

    def test_equality(self):
        assert self.make() == self.make()
        other = self.make()
        other.put("cpucount", 8)
        assert self.make() != other

    def test_stamp_and_staleness(self):
        e = self.make().stamp(now=100.0, ttl=30.0)
        assert e.timestamp() == 100.0
        assert e.valid_to() == 130.0
        assert not e.is_stale(120.0)
        assert e.is_stale(131.0)

    def test_stamp_without_ttl(self):
        e = self.make().stamp(now=100.0)
        assert e.valid_to() is None
        assert not e.is_stale(1e9)

    def test_bad_value_type_rejected(self):
        with pytest.raises(TypeError):
            Entry("cn=x", cn=object())


@given(
    st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=8,
        ),
        max_size=10,
    )
)
def test_attribute_values_dedup_invariant(values):
    """No two stored values are equal under the matching rule."""
    av = AttributeValues("cn", values)
    normalized = [av.rule.normalize(v) for v in av.values()]
    assert len(normalized) == len(set(normalized))
    for v in values:
        assert av.contains(v)
