"""Tests for the RFC 4515 filter parser and evaluator."""

import pytest
from hypothesis import given, strategies as st

from repro.ldap.entry import Entry
from repro.ldap.filter import (
    And,
    Approx,
    Equality,
    FilterError,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Presence,
    Substring,
    escape_value,
    parse,
)

HOST = Entry(
    "hn=hostX",
    objectclass=["computer"],
    system="mips irix",
    cpucount=4,
    load5="3.2",
    memorysize="512 MB",
)


class TestParsing:
    def test_equality(self):
        f = parse("(objectclass=computer)")
        assert f == Equality("objectclass", "computer")

    def test_presence(self):
        assert parse("(cn=*)") == Presence("cn")

    def test_substring_forms(self):
        f = parse("(system=*irix*)")
        assert isinstance(f, Substring)
        assert f.initial is None and f.final is None and f.any == ("irix",)
        f2 = parse("(system=mips*)")
        assert f2.initial == "mips" and f2.any == () and f2.final is None
        f3 = parse("(system=*x)")
        assert f3.final == "x"
        f4 = parse("(cn=a*b*c)")
        assert (f4.initial, f4.any, f4.final) == ("a", ("b",), "c")

    def test_ordering(self):
        assert parse("(load5>=2)") == GreaterOrEqual("load5", "2")
        assert parse("(load5<=2)") == LessOrEqual("load5", "2")

    def test_approx(self):
        assert parse("(system~=mipsirix)") == Approx("system", "mipsirix")

    def test_and_or_not(self):
        f = parse("(&(a=1)(|(b=2)(c=3))(!(d=4)))")
        assert isinstance(f, And)
        assert len(f.clauses) == 3
        assert isinstance(f.clauses[1], Or)
        assert isinstance(f.clauses[2], Not)

    def test_escapes(self):
        f = parse(r"(cn=a\2ab)")
        assert f == Equality("cn", "a*b")
        f2 = parse(r"(cn=\28paren\29)")
        assert f2 == Equality("cn", "(paren)")

    def test_empty_value_equality(self):
        assert parse("(cn=)") == Equality("cn", "")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "(cn=x",
            "cn=x)",
            "(&)",
            "(!)",
            "((cn=x))",
            "(cn>x)",
            "(=x)",
            "(cn=a**b)",
            r"(cn=a\zz)",
            "(cn=x)(cn=y)",
            "(a=(b))",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(FilterError):
            parse(bad)


class TestEvaluation:
    def test_equality_case_insensitive(self):
        assert parse("(system=MIPS IRIX)").matches(HOST)

    def test_missing_attr_is_false(self):
        assert not parse("(nosuch=1)").matches(HOST)

    def test_not_on_missing_attr_is_true(self):
        # LDAP 'undefined' collapses to false, so NOT yields true here.
        assert parse("(!(nosuch=1))").matches(HOST)

    def test_presence(self):
        assert parse("(load5=*)").matches(HOST)
        assert not parse("(gpu=*)").matches(HOST)

    def test_numeric_ordering(self):
        assert parse("(load5>=3)").matches(HOST)
        assert not parse("(load5>=3.5)").matches(HOST)
        assert parse("(load5<=10)").matches(HOST)
        assert parse("(cpucount>=4)").matches(HOST)

    def test_size_units_in_ordering(self):
        assert parse("(memorysize>=256 MB)").matches(HOST)
        assert not parse("(memorysize>=1 GB)").matches(HOST)

    def test_substring(self):
        assert parse("(system=*irix*)").matches(HOST)
        assert parse("(system=mips*)").matches(HOST)
        assert parse("(system=*Irix)").matches(HOST)
        assert not parse("(system=linux*)").matches(HOST)

    def test_substring_non_overlapping_components(self):
        e = Entry("cn=x", cn="abc")
        assert not parse("(cn=*bc*bc*)").matches(e)
        assert parse("(cn=*b*c*)").matches(e)

    def test_substring_final_cannot_reuse_any_match(self):
        e = Entry("cn=x", cn="ab")
        assert not parse("(cn=*ab*b)").matches(e)

    def test_approx(self):
        assert parse("(system~=MIPS-IRIX)").matches(HOST)
        assert not parse("(system~=linux)").matches(HOST)

    def test_boolean_combinators(self):
        f = parse("(&(objectclass=computer)(load5<=4)(!(system=linux)))")
        assert f.matches(HOST)
        f2 = parse("(|(system=linux)(system=mips irix))")
        assert f2.matches(HOST)

    def test_multivalued_any_semantics(self):
        e = Entry("cn=x", member=["alice", "bob"])
        assert parse("(member=bob)").matches(e)
        assert parse("(!(member=carol))").matches(e)

    def test_attributes_collection(self):
        f = parse("(&(a=1)(|(b=2)(!(c=3))))")
        assert f.attributes() == {"a", "b", "c"}


_attr = st.sampled_from(["cn", "system", "load5", "objectclass"])
_val = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=0,
    max_size=10,
)


@st.composite
def _filters(draw, depth=0):
    if depth >= 3:
        kind = draw(st.sampled_from(["eq", "ge", "le", "pres", "approx"]))
    else:
        kind = draw(
            st.sampled_from(
                ["eq", "ge", "le", "pres", "approx", "sub", "and", "or", "not"]
            )
        )
    if kind == "eq":
        return Equality(draw(_attr), draw(_val))
    if kind == "ge":
        return GreaterOrEqual(draw(_attr), draw(_val))
    if kind == "le":
        return LessOrEqual(draw(_attr), draw(_val))
    if kind == "pres":
        return Presence(draw(_attr))
    if kind == "approx":
        return Approx(draw(_attr), draw(_val))
    if kind == "sub":
        nonempty = _val.filter(lambda s: s != "")
        initial = draw(st.one_of(st.none(), nonempty))
        anys = tuple(draw(st.lists(nonempty, max_size=2)))
        final = draw(st.one_of(st.none(), nonempty))
        if initial is None and not anys and final is None:
            initial = "x"
        return Substring(draw(_attr), initial, anys, final)
    sub = st.lists(_filters(depth=depth + 1), min_size=1, max_size=3)
    if kind == "and":
        return And(tuple(draw(sub)))
    if kind == "or":
        return Or(tuple(draw(sub)))
    return Not(draw(_filters(depth=depth + 1)))


class TestFilterProperties:
    @given(_filters())
    def test_unparse_parse_roundtrip(self, f):
        assert parse(str(f)) == f

    @given(_filters())
    def test_not_inverts(self, f):
        assert Not(f).matches(HOST) != f.matches(HOST)

    @given(st.lists(_filters(), min_size=1, max_size=4))
    def test_and_is_conjunction(self, clauses):
        assert And(tuple(clauses)).matches(HOST) == all(
            c.matches(HOST) for c in clauses
        )

    @given(st.lists(_filters(), min_size=1, max_size=4))
    def test_or_is_disjunction(self, clauses):
        assert Or(tuple(clauses)).matches(HOST) == any(
            c.matches(HOST) for c in clauses
        )

    @given(_val)
    def test_escape_roundtrip(self, value):
        f = parse(f"(cn={escape_value(value)})")
        assert f == Equality("cn", value)
