"""Tests for the GIIS: GRRP intake, chaining, referrals, hierarchy."""


from repro.giis import GiisBackend, NameIndex
from repro.grip.messages import GrrpMessage, NotificationType
from repro.ldap.backend import RequestContext
from repro.ldap.dit import Scope
from repro.ldap.protocol import AddRequest, ResultCode, SearchRequest
from repro.ldap.entry import Entry
from repro.ldap.url import LdapUrl
from repro.net.sim import Simulator
from repro.testbed import GridTestbed

CTX = RequestContext(identity="CN=tester")


def reg_msg(url="ldap://gris1:2135/", suffix="hn=r1, o=O1", ts=0.0, ttl=60.0, **meta):
    metadata = {"suffix": suffix}
    metadata.update(meta)
    return GrrpMessage(
        service_url=url,
        timestamp=ts,
        valid_until=ts + ttl,
        metadata=metadata,
    )


class TestGrrpIntake:
    def test_register_via_ldap_add(self):
        sim = Simulator()
        giis = GiisBackend("o=Grid", clock=sim)
        entry = reg_msg().to_entry("o=Grid")
        result = giis.add(AddRequest.from_entry(entry), CTX)
        assert result.ok
        assert giis.registry.is_registered("ldap://gris1:2135/")
        reg = giis.registry.lookup("ldap://gris1:2135/")
        assert reg.source_identity == "CN=tester"

    def test_non_registration_add_refused(self):
        sim = Simulator()
        giis = GiisBackend("o=Grid", clock=sim)
        entry = Entry("hn=x, o=Grid", objectclass="computer", hn="x")
        result = giis.add(AddRequest.from_entry(entry), CTX)
        assert result.code == ResultCode.UNWILLING_TO_PERFORM

    def test_membership_policy_refusal(self):
        sim = Simulator()
        giis = GiisBackend(
            "o=Grid", clock=sim, accept=lambda m, i: m.metadata.get("vo") == "A"
        )
        ok = giis.add(AddRequest.from_entry(reg_msg(vo="A").to_entry("o=Grid")), CTX)
        assert ok.ok
        bad = giis.add(
            AddRequest.from_entry(
                reg_msg(url="ldap://other:2135/", vo="B").to_entry("o=Grid")
            ),
            CTX,
        )
        assert bad.code == ResultCode.INSUFFICIENT_ACCESS_RIGHTS

    def test_datagram_intake(self):
        sim = Simulator()
        giis = GiisBackend("o=Grid", clock=sim)
        giis.handle_grrp_datagram(("gris1", 0), reg_msg().to_bytes())
        assert len(giis.registry) == 1
        giis.handle_grrp_datagram(("gris1", 0), b"garbage")  # ignored
        assert len(giis.registry) == 1

    def test_unregister(self):
        sim = Simulator()
        giis = GiisBackend("o=Grid", clock=sim)
        giis.apply_grrp(reg_msg())
        giis.apply_grrp(
            reg_msg(ts=1.0, ttl=0.0).__class__(
                service_url="ldap://gris1:2135/",
                notification_type=NotificationType.UNREGISTER,
                timestamp=1.0,
                valid_until=1.0,
            )
        )
        assert len(giis.registry) == 0

    def test_local_entries_expose_membership(self):
        sim = Simulator()
        giis = GiisBackend(
            "o=Grid", clock=sim, url=LdapUrl("giis", 2135, "o=Grid"), vo_name="VO-X"
        )
        giis.apply_grrp(reg_msg())
        entries = giis.local_entries()
        assert len(entries) == 2
        assert entries[0].dn == giis.suffix
        assert "VO-X" in entries[0].first("description")
        assert entries[1].first("url") == "ldap://gris1:2135/"

    def test_name_index_wiring(self):
        sim = Simulator()
        giis = GiisBackend("o=Grid", clock=sim)
        index = NameIndex()
        giis.add_index(index)
        giis.apply_grrp(reg_msg(name="r1"))
        assert index.resolve("r1") == "ldap://gris1:2135/"
        sim.run_until(61.0)
        giis.registry.sweep()
        assert index.resolve("r1") is None


def build_vo(tb: GridTestbed, n_gris: int = 2, **giis_kwargs):
    """One GIIS with *n_gris* registered standard GRIS children."""
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO-A", **giis_kwargs)
    children = []
    for i in range(n_gris):
        host = f"r{i}"
        gris = tb.standard_gris(host, f"hn={host}, o=Grid", load_mean=0.5 + i)
        tb.register(gris, giis, interval=20.0, ttl=60.0, name=host)
        children.append(gris)
    tb.run(1.0)  # let first registrations land
    return giis, children


class TestChaining:
    def test_vo_wide_search(self):
        tb = GridTestbed(seed=1)
        giis, children = build_vo(tb, n_gris=3)
        client = tb.client("user", giis)
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert sorted(e.first("hn") for e in out) == ["r0", "r1", "r2"]

    def test_merged_view_includes_registrations_and_data(self):
        tb = GridTestbed(seed=1)
        giis, _ = build_vo(tb, n_gris=1)
        client = tb.client("user", giis)
        out = client.search("o=Grid")
        dns = {str(e.dn) for e in out}
        assert "o=Grid" in dns
        assert any(dn.startswith("regid=") for dn in dns)
        assert "hn=r0, o=Grid" in dns
        assert "queue=default, hn=r0, o=Grid" in dns

    def test_scoped_search_hits_one_child(self):
        tb = GridTestbed(seed=1)
        giis, children = build_vo(tb, n_gris=3)
        client = tb.client("user", giis)
        before = giis.backend.stats_chained
        out = client.search("hn=r1, o=Grid", filter="(objectclass=computer)")
        assert len(out) == 1
        assert giis.backend.stats_chained - before == 1  # namespace pruning

    def test_attribute_selection_through_chain(self):
        tb = GridTestbed(seed=1)
        giis, _ = build_vo(tb)
        client = tb.client("user", giis)
        out = client.search(
            "o=Grid", filter="(objectclass=computer)", attrs=["hn"]
        )
        assert all(e.has("hn") and not e.has("cpucount") for e in out)

    def test_filter_on_dynamic_attrs(self):
        tb = GridTestbed(seed=1)
        giis, _ = build_vo(tb, n_gris=4)
        client = tb.client("user", giis)
        out = client.search(
            "o=Grid", filter="(&(objectclass=loadaverage)(load5<=100))"
        )
        assert len(out) == 4

    def test_expired_child_not_queried(self):
        tb = GridTestbed(seed=1)
        giis, children = build_vo(tb, n_gris=2)
        children[0].stop_registrations()
        tb.run(120.0)  # ttl=60 expires
        client = tb.client("user", giis)
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert [e.first("hn") for e in out] == ["r1"]

    def test_crashed_child_skipped_with_partial_results(self):
        tb = GridTestbed(seed=1)
        giis, children = build_vo(tb, n_gris=2, child_timeout=2.0)
        children[0].node.crash()
        client = tb.client("user", giis)
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert [e.first("hn") for e in out] == ["r1"]  # partial results (§2.2)
        assert giis.backend.stats_child_errors >= 1

    def test_silent_child_times_out_with_partial_results(self):
        """A child that accepts connections but never answers costs the
        chaining timeout, then the query completes with partial results."""
        tb = GridTestbed(seed=1)
        giis, children = build_vo(tb, n_gris=1, child_timeout=2.0)
        blackhole = tb.host("blackhole")
        blackhole.listen(2135, lambda conn: None)  # accept, never respond
        giis.backend.apply_grrp(
            reg_msg(
                url="ldap://blackhole:2135/",
                suffix="hn=bh, o=Grid",
                ts=tb.sim.now(),
                ttl=1e6,
            )
        )
        client = tb.client("user", giis)
        t0 = tb.sim.now()
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert [e.first("hn") for e in out] == ["r0"]
        assert tb.sim.now() - t0 >= 2.0  # paid the child timeout
        assert giis.backend.stats_child_timeouts == 1

    def test_query_cache(self):
        tb = GridTestbed(seed=1)
        giis, _ = build_vo(tb, n_gris=2, cache_ttl=30.0)
        client = tb.client("user", giis)
        client.search("o=Grid", filter="(objectclass=computer)")
        chained = giis.backend.stats_chained
        client.search("o=Grid", filter="(objectclass=computer)")
        assert giis.backend.stats_chained == chained  # served from cache
        assert giis.backend.stats_cache_hits == 1

    def test_query_cache_bounded_by_max_entries(self):
        tb = GridTestbed(seed=1)
        giis, _ = build_vo(tb, n_gris=1, cache_ttl=1e9, max_query_cache=2)
        client = tb.client("user", giis)
        backend = giis.backend
        for oc in ("computer", "queue", "loadaverage", "network"):
            client.search("o=Grid", filter=f"(objectclass={oc})")
        assert len(backend._query_cache) == 2  # capped, oldest evicted
        evictions = backend.metrics.get("giis.query_cache.evictions")
        assert evictions is not None and evictions.value == 2
        size_gauge = backend.metrics.get("giis.query_cache.size")
        assert size_gauge is not None and size_gauge.value == 2

    def test_query_cache_sweeps_expired_slots_on_miss(self):
        tb = GridTestbed(seed=1)
        giis, _ = build_vo(tb, n_gris=1, cache_ttl=5.0)
        client = tb.client("user", giis)
        backend = giis.backend
        client.search("o=Grid", filter="(objectclass=computer)")
        assert len(backend._query_cache) == 1
        tb.run(10.0)  # slot outlives cache_ttl
        client.search("o=Grid", filter="(objectclass=queue)")
        # The miss path swept the dead slot; only the new result remains.
        assert len(backend._query_cache) == 1
        (key,) = backend._query_cache
        assert "queue" in key[2]

    def test_cache_invalidated_by_membership_change(self):
        tb = GridTestbed(seed=1)
        giis, children = build_vo(tb, n_gris=1, cache_ttl=1e9)
        client = tb.client("user", giis)
        client.search("o=Grid", filter="(objectclass=computer)")
        gris = tb.standard_gris("rX", "hn=rX, o=Grid")
        tb.register(gris, giis)
        tb.run(1.0)
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert sorted(e.first("hn") for e in out) == ["r0", "rX"]


class TestReferralMode:
    def test_referrals_returned_instead_of_chaining(self):
        tb = GridTestbed(seed=2)
        giis, children = build_vo(tb, n_gris=2, mode="referral")
        client = tb.client("user", giis)
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert len(out.entries) == 0  # computers live at the providers
        assert len(out.referrals) == 2
        url = LdapUrl.parse(out.referrals[0])
        assert url.host in ("r0", "r1")

    def test_client_can_follow_referral(self):
        tb = GridTestbed(seed=2)
        giis, children = build_vo(tb, n_gris=1, mode="referral")
        client = tb.client("user", giis)
        out = client.search("o=Grid", filter="(objectclass=computer)")
        target = LdapUrl.parse(out.referrals[0])
        direct = tb.client("user", target)
        got = direct.search(target.dn, filter="(objectclass=computer)")
        assert got.entries[0].first("hn") == "r0"


class TestHierarchy:
    def build_figure5(self, tb):
        """Two resource centers + one individual under a VO directory."""
        vo = tb.add_giis("vo-dir", "o=Grid", vo_name="VO")
        center1 = tb.add_giis("center1", "o=O1, o=Grid", vo_name="Center-1")
        center2 = tb.add_giis("center2", "o=O2, o=Grid", vo_name="Center-2")
        tb.register(center1, vo, name="center1")
        tb.register(center2, vo, name="center2")
        hosts = {}
        for org, center, count in (("O1", center1, 3), ("O2", center2, 2)):
            for i in range(count):
                host = f"{org.lower()}-r{i + 1}"
                gris = tb.standard_gris(host, f"hn={host}, o={org}, o=Grid")
                tb.register(gris, center, name=host)
                hosts[host] = gris
        solo = tb.standard_gris("solo", "hn=solo, o=Grid")
        tb.register(solo, vo, name="solo")
        hosts["solo"] = solo
        tb.run(1.0)
        return vo, center1, center2, hosts

    def test_root_search_sees_everything(self):
        tb = GridTestbed(seed=3)
        vo, *_ = self.build_figure5(tb)
        client = tb.client("user", vo)
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert len(out) == 6  # 3 + 2 + 1

    def test_scoped_search_stays_in_one_org(self):
        tb = GridTestbed(seed=3)
        vo, center1, center2, _ = self.build_figure5(tb)
        client = tb.client("user", vo)
        before2 = center2.backend.stats_chained
        out = client.search("o=O1, o=Grid", filter="(objectclass=computer)")
        assert len(out) == 3
        assert center2.backend.stats_chained == before2  # O2 untouched

    def test_direct_center_query(self):
        tb = GridTestbed(seed=3)
        vo, center1, _, _ = self.build_figure5(tb)
        client = tb.client("user", center1)
        out = client.search("o=O1, o=Grid", filter="(objectclass=computer)")
        assert len(out) == 3

    def test_search_single_resource_from_root(self):
        tb = GridTestbed(seed=3)
        vo, *_ = self.build_figure5(tb)
        client = tb.client("user", vo)
        out = client.search("o=Grid", filter="(hn=o2-r1)")
        assert len(out) == 1
        assert str(out.entries[0].dn) == "hn=o2-r1, o=O2, o=Grid"


class TestLoopPrevention:
    def test_directory_cycle_terminates(self):
        """A registered with B and B with A must not recurse forever."""
        tb = GridTestbed(seed=88)
        a = tb.add_giis("dir-a", "o=Grid", vo_name="A", child_timeout=1.0)
        b = tb.add_giis("dir-b", "o=Grid", vo_name="B", child_timeout=1.0)
        tb.register(a, b, name="dir-a")
        tb.register(b, a, name="dir-b")
        gris = tb.standard_gris("r0", "hn=r0, o=Grid")
        tb.register(gris, a, name="r0")
        tb.run(1.0)

        client = tb.client("user", a)
        out = client.search("o=Grid", filter="(objectclass=computer)")
        # the query completed (did not recurse forever) and found the
        # resource despite the cycle
        assert [e.first("hn") for e in out] == ["r0"]
        assert (
            a.backend.stats_depth_limited + b.backend.stats_depth_limited >= 1
        )

    def test_self_registration_terminates(self):
        tb = GridTestbed(seed=88)
        a = tb.add_giis("dir-a", "o=Grid", child_timeout=1.0)
        tb.register(a, a, name="self")  # operator error
        tb.run(1.0)
        client = tb.client("user", a)
        out = client.search("o=Grid", check=False)
        assert out.result.ok

    def test_depth_limit_configurable(self):
        """A deep but legitimate chain works within the limit."""
        tb = GridTestbed(seed=89)
        dirs = []
        top = tb.add_giis("d0", "o=Grid", max_chain_depth=8)
        dirs.append(top)
        parent = top
        suffix = "o=Grid"
        for i in range(1, 4):
            suffix = f"ou=l{i}, {suffix}"
            d = tb.add_giis(f"d{i}", suffix, max_chain_depth=8)
            tb.register(d, parent, name=f"d{i}")
            dirs.append(d)
            parent = d
        gris = tb.standard_gris("leaf", f"hn=leaf, {suffix}")
        tb.register(gris, parent, name="leaf")
        tb.run(1.0)
        out = tb.client("u", top).search("o=Grid", filter="(hn=leaf)")
        assert len(out) == 1


class TestMembershipSubscriptions:
    def test_registration_changes_pushed(self):
        """Persistent search on a GIIS streams VO membership changes —
        a VO operator watching resources come and go."""
        tb = GridTestbed(seed=93)
        giis = tb.add_giis("giis", "o=Grid", vo_name="VO")
        changes = []
        client = tb.client("operator", giis)
        from repro.ldap.backend import ChangeType

        client.subscribe(
            SearchRequest(base="o=Grid", scope=Scope.SUBTREE),
            lambda e, c: changes.append((c, e.first("url"))),
        )
        tb.run(0.5)
        gris = tb.standard_gris("r0", "hn=r0, o=Grid")
        registrant = tb.register(gris, giis, interval=10.0, ttl=30.0, name="r0")
        tb.run(1.0)
        assert (ChangeType.ADD, "ldap://r0:2135/") in changes

        registrant.deregister_from(str(giis.url), notify=True)
        tb.run(1.0)
        assert (ChangeType.DELETE, "ldap://r0:2135/") in changes

    def test_expiry_pushed_as_delete(self):
        tb = GridTestbed(seed=93)
        giis = tb.add_giis("giis", "o=Grid", purge_interval=5.0)
        changes = []
        client = tb.client("operator", giis)
        from repro.ldap.backend import ChangeType

        client.subscribe(
            SearchRequest(base="o=Grid", scope=Scope.SUBTREE),
            lambda e, c: changes.append(c),
        )
        gris = tb.standard_gris("r0", "hn=r0, o=Grid")
        gris_reg = tb.register(gris, giis, interval=10.0, ttl=20.0)
        tb.run(1.0)
        gris_reg.stop()  # silent death
        tb.run(60.0)
        assert ChangeType.DELETE in changes  # soft-state purge observed
