"""The GRIS concurrency contract (§10.3 under a multi-worker executor).

Covers the provider-cache overhaul — single-flight coalescing,
stale-while-revalidate, negative caching with exponential backoff — and
the parallel provider fan-out: latency = max(provider), deterministic
inline mode for the simulator, cancellation, and gauge hygiene.
"""

import threading
import time

import pytest

from repro.gris import FunctionProvider, GrisBackend, ProviderCache, ProviderError
from repro.ldap.backend import RequestContext
from repro.ldap.dit import Scope
from repro.ldap.entry import Entry
from repro.ldap.executor import CancelToken
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import SearchRequest
from repro.net.clock import WallClock
from repro.net.sim import Simulator


def req(base="o=O1", scope=Scope.SUBTREE, filt="(objectclass=*)"):
    return SearchRequest(base=base, scope=scope, filter=parse_filter(filt))


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestSingleFlight:
    def test_concurrent_misses_invoke_provider_once(self):
        """N concurrent cold misses coalesce onto one provide() call."""
        release = threading.Event()

        def slow():
            release.wait(5.0)
            return [Entry("cn=x", cn="x")]

        cache = ProviderCache()
        provider = FunctionProvider("p", slow, cache_ttl=60.0)
        results = []

        def query():
            results.append(cache.get(provider, now=0.0))

        threads = [threading.Thread(target=query) for _ in range(6)]
        for t in threads:
            t.start()
        # 1 leader in provide(), 5 coalesced waiters blocked on its flight.
        assert wait_until(lambda: cache.stats.coalesced == 5)
        release.set()
        for t in threads:
            t.join(timeout=5.0)
        assert provider.invocations == 1
        assert len(results) == 6
        assert all(produced == 0.0 for _, produced in results)
        assert cache.stats.misses == 6 and cache.stats.hits == 0

    def test_coalesced_waiters_share_leader_failure(self):
        release = threading.Event()

        def slow_boom():
            release.wait(5.0)
            raise RuntimeError("backend down")

        cache = ProviderCache()
        provider = FunctionProvider("p", slow_boom, cache_ttl=60.0)
        errors = []

        def query():
            try:
                cache.get(provider, now=0.0)
            except ProviderError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=query) for _ in range(4)]
        for t in threads:
            t.start()
        assert wait_until(lambda: cache.stats.coalesced == 3)
        release.set()
        for t in threads:
            t.join(timeout=5.0)
        assert provider.invocations == 1
        assert len(errors) == 4
        assert cache.stats.failures == 1  # one flight, one failure

    def test_threaded_stress_accounting_is_consistent(self):
        """Hammering one provider from many threads loses no updates."""
        cache = ProviderCache()
        provider = FunctionProvider(
            "p", lambda: [Entry("cn=x", cn="x")], cache_ttl=0.002
        )
        per_thread, n_threads = 150, 8

        def worker():
            for _ in range(per_thread):
                cache.get(provider, now=time.monotonic())

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        total = per_thread * n_threads
        assert cache.stats.hits + cache.stats.misses == total
        assert 1 <= provider.invocations <= total


class TestStaleWhileRevalidate:
    def make(self, swr=30.0):
        tasks = []
        cache = ProviderCache(
            stale_while_revalidate=swr,
            refresh_runner=lambda fn: tasks.append(fn) or True,
        )
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            return [Entry("cn=x", cn=str(calls["n"]))]

        return cache, tasks, FunctionProvider("p", fn, cache_ttl=10.0)

    def test_stale_served_while_background_refresh_runs(self):
        cache, tasks, provider = self.make()
        _, produced = cache.get(provider, now=0.0)  # cold miss
        assert produced == 0.0
        entries, produced = cache.get(provider, now=15.0)  # expired, in window
        assert produced == 0.0  # stale snapshot answered immediately
        assert entries[0].first("cn") == "1"
        assert cache.stats.revalidations == 1
        assert provider.invocations == 1 and len(tasks) == 1
        tasks.pop()()  # run the background refresh
        assert provider.invocations == 2
        entries, produced = cache.get(provider, now=15.0)
        assert produced == 15.0  # revalidation landed
        assert entries[0].first("cn") == "2"

    def test_only_one_revalidation_in_flight(self):
        cache, tasks, provider = self.make()
        cache.get(provider, now=0.0)
        cache.get(provider, now=15.0)
        cache.get(provider, now=16.0)  # refresh already running: serve stale
        assert len(tasks) == 1 and cache.stats.revalidations == 1
        assert provider.invocations == 1

    def test_beyond_window_blocks_on_refresh(self):
        cache, tasks, provider = self.make(swr=30.0)
        cache.get(provider, now=0.0)
        _, produced = cache.get(provider, now=50.0)  # past ttl+swr = 40
        assert produced == 50.0 and provider.invocations == 2
        assert not tasks  # refreshed inline, not in the background

    def test_without_runner_swr_degrades_to_blocking_refresh(self):
        """Inline/simulator mode: no background threads, fully deterministic."""
        cache = ProviderCache(stale_while_revalidate=30.0)
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            return [Entry("cn=x", cn="x")]

        provider = FunctionProvider("p", fn, cache_ttl=10.0)
        cache.get(provider, now=0.0)
        _, produced = cache.get(provider, now=15.0)
        assert produced == 15.0 and provider.invocations == 2
        assert cache.stats.revalidations == 0


class TestFailureBackoff:
    def test_backoff_skips_then_recovers(self):
        healthy = {"ok": False}

        def fn():
            if not healthy["ok"]:
                raise RuntimeError("down")
            return [Entry("cn=x", cn="x")]

        cache = ProviderCache(backoff_base=2.0, backoff_max=60.0)
        provider = FunctionProvider("p", fn, cache_ttl=5.0)
        with pytest.raises(ProviderError):
            cache.get(provider, now=0.0)
        assert cache.stats.failures == 1
        # Backing off until t=2: the provider is not even invoked.
        with pytest.raises(ProviderError):
            cache.get(provider, now=1.0)
        assert provider.invocations == 1
        assert cache.stats.backoff_skips == 1
        assert cache.in_backoff("p", 1.0)
        # Past the backoff: retried, fails again, the delay doubles.
        with pytest.raises(ProviderError):
            cache.get(provider, now=2.5)
        assert provider.invocations == 2
        with pytest.raises(ProviderError):
            cache.get(provider, now=6.0)  # 2.5 + 4 = 6.5 still ahead
        assert provider.invocations == 2
        # Recovery resets the failure history.
        healthy["ok"] = True
        _, produced = cache.get(provider, now=7.0)
        assert produced == 7.0 and provider.invocations == 3
        assert not cache.in_backoff("p", 7.0)

    def test_backoff_serves_stale_snapshot_without_probing(self):
        healthy = {"ok": True}

        def fn():
            if not healthy["ok"]:
                raise RuntimeError("down")
            return [Entry("cn=x", cn="x")]

        cache = ProviderCache(backoff_base=1.0)
        provider = FunctionProvider("p", fn, cache_ttl=1.0)
        cache.get(provider, now=0.0)
        healthy["ok"] = False
        _, produced = cache.get(provider, now=2.0)  # fails -> stale served
        assert produced == 0.0 and cache.stats.failures == 1
        _, produced = cache.get(provider, now=2.5)  # in backoff: no probe
        assert produced == 0.0
        assert provider.invocations == 2
        assert cache.stats.backoff_skips == 1
        assert cache.stats.stale_served == 2

    def test_backoff_caps_at_maximum(self):
        cache = ProviderCache(backoff_base=1.0, backoff_max=4.0)
        provider = FunctionProvider("p", lambda: 1 / 0, cache_ttl=1.0)
        now = 0.0
        for _ in range(6):  # uncapped this would reach 32s
            with pytest.raises(ProviderError):
                cache.get(provider, now=now)
            now += 4.0 + 0.1
        assert provider.invocations == 6  # every probe happened: cap held


def build_gris(workers, provider_specs, clock=None, swr=0.0):
    """A GRIS over FunctionProviders described as (name, namespace, entries)."""
    gris = GrisBackend(
        "o=O1",
        clock=clock or WallClock(),
        provider_workers=workers,
        stale_while_revalidate=swr,
    )
    gris.set_suffix_entry(Entry("o=O1", objectclass="organization", o="O1"))
    for name, namespace, entries in provider_specs:
        gris.add_provider(
            FunctionProvider(
                name, lambda entries=entries: entries, namespace=namespace,
                cache_ttl=300.0,
            )
        )
    return gris


HOST_SPECS = [
    (
        f"host-{i}",
        f"hn=h{i}",
        [Entry(f"hn=h{i}", objectclass="computer", hn=f"h{i}", cpucount=str(i + 1))],
    )
    for i in range(4)
]


class TestParallelCollect:
    def test_parallel_results_match_inline_results(self):
        inline = build_gris(0, HOST_SPECS, clock=Simulator())
        parallel = build_gris(4, HOST_SPECS, clock=Simulator())
        try:
            a = inline.search(req(), RequestContext())
            b = parallel.search(req(), RequestContext())
            assert [str(e.dn) for e in a.entries] == [str(e.dn) for e in b.entries]
            assert len(a.entries) == 5  # suffix + 4 hosts
        finally:
            parallel.shutdown()

    def test_inline_collect_is_deterministic_under_simulator(self):
        runs = []
        for _ in range(2):
            gris = build_gris(0, HOST_SPECS, clock=Simulator())
            out = gris.search(req(), RequestContext())
            runs.append([(str(e.dn), e.first("cpucount")) for e in out.entries])
        assert runs[0] == runs[1]

    def test_parallel_latency_is_max_not_sum(self):
        naptime = 0.15

        def sleepy(i):
            def fn():
                time.sleep(naptime)
                return [Entry(f"hn=h{i}", objectclass="computer", hn=f"h{i}")]

            return fn

        specs = [(f"slow-{i}", f"hn=h{i}", None) for i in range(4)]
        gris = GrisBackend("o=O1", clock=WallClock(), provider_workers=4)
        for i, (name, namespace, _) in enumerate(specs):
            gris.add_provider(
                FunctionProvider(name, sleepy(i), namespace=namespace, cache_ttl=300.0)
            )
        try:
            started = time.monotonic()
            out = gris.search(req(), RequestContext())
            elapsed = time.monotonic() - started
            assert len(out.entries) == 4
            # Sequential dispatch would need >= 4 * naptime = 0.6s.
            assert elapsed < 3 * naptime
        finally:
            gris.shutdown()

    def test_cancel_aborts_parallel_fanout(self):
        release = threading.Event()
        entered = threading.Event()

        def stuck():
            entered.set()
            release.wait(5.0)
            return [Entry("hn=h0", objectclass="computer", hn="h0")]

        gris = GrisBackend("o=O1", clock=WallClock(), provider_workers=2)
        gris.add_provider(
            FunctionProvider("stuck-a", stuck, namespace="hn=h0", cache_ttl=300.0)
        )
        gris.add_provider(
            FunctionProvider("stuck-b", stuck, namespace="hn=h1", cache_ttl=300.0)
        )
        token = CancelToken()
        outcome = []
        searcher = threading.Thread(
            target=lambda: outcome.append(
                gris.search(req(), RequestContext(token=token))
            )
        )
        try:
            searcher.start()
            assert entered.wait(5.0)  # fan-out is in flight
            token.cancel("abandon")
            searcher.join(timeout=5.0)
            assert not searcher.is_alive()  # returned without the probes
            cancelled = gris.metrics.counter("gris.collect.cancelled")
            assert cancelled.value == 1
        finally:
            release.set()
            gris.shutdown()

    def test_pool_metrics_registered_under_gris_namespace(self):
        gris = build_gris(2, HOST_SPECS)
        try:
            gris.search(req(), RequestContext())
            snap = gris.metrics.snapshot()
            assert "gris.executor.submitted{pool=gris-provider}" in snap
            assert snap["gris.executor.submitted{pool=gris-provider}"]["value"] >= 4
            assert any(k.startswith("gris.collect.seconds") for k in snap)
        finally:
            gris.shutdown()


class TestGaugeHygiene:
    def test_remove_provider_unregisters_cache_age_gauge(self):
        gris = GrisBackend("o=O1", clock=Simulator())
        gris.add_provider(FunctionProvider("p", lambda: [Entry("cn=x", cn="x")]))
        assert gris.metrics.get("gris.cache.age", {"provider": "p"}) is not None
        gris.remove_provider("p")
        assert gris.metrics.get("gris.cache.age", {"provider": "p"}) is None
        assert not any(
            name.startswith("gris.cache.age") for name in gris.metrics.snapshot()
        )

    def test_readding_provider_rewires_the_gauge(self):
        sim = Simulator()
        gris = GrisBackend("o=O1", clock=sim)
        gris.add_provider(
            FunctionProvider("p", lambda: [Entry("cn=x", cn="x")], cache_ttl=60.0)
        )
        gris.remove_provider("p")
        gris.add_provider(
            FunctionProvider("p", lambda: [Entry("cn=y", cn="y")], cache_ttl=60.0)
        )
        gris.search(req(), RequestContext())
        gauge = gris.metrics.get("gris.cache.age", {"provider": "p"})
        assert gauge is not None and gauge.value == 0.0
