"""Wire-path fast lanes: zero-copy decode, DN interning, encode caching.

Three invariants guard the PR-8 optimizations:

* the zero-copy (memoryview-walking) decoder produces *identical*
  decoded messages to the old slice-based decoder, over random nested
  TLVs and a corpus covering every protocol op;
* no user-facing decoded field leaks a ``memoryview`` — everything that
  escapes the decoder is ``bytes``/``str``;
* the DN intern cache and the per-entry encode cache change *when* work
  happens, never *what* goes on the wire: capture-and-compare asserts
  byte-identical frames with the fast lanes on and off, over both real
  transports.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.ldap import ber
from repro.ldap.backend import DitBackend
from repro.ldap.ber import BerError, Tag, TlvReader
from repro.ldap.client import LdapClient
from repro.ldap.dit import DIT, Scope
from repro.ldap.dn import DN, configure_intern_cache, intern_cache_stats
from repro.ldap.entry import Entry, WireCache
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import (
    AbandonRequest,
    AddRequest,
    AddResponse,
    BindRequest,
    BindResponse,
    Control,
    DeleteRequest,
    DeleteResponse,
    ExtendedRequest,
    ExtendedResponse,
    LdapMessage,
    LdapResult,
    ModifyRequest,
    ModifyResponse,
    ResultCode,
    SearchRequest,
    SearchResultDone,
    SearchResultEntry,
    SearchResultReference,
    UnbindRequest,
    decode_message,
    encode_message,
    encode_message_with_op,
    encode_search_entry,
)
from repro.ldap.server import LdapServer
from repro.net import TRANSPORTS, make_endpoint
from repro.security.acl import (
    AccessPolicy,
    AccessRule,
    attribute_restricted_policy,
    open_policy,
)

# ---------------------------------------------------------------------------
# Reference decoder: the pre-zero-copy slice-based TLV walk, verbatim.
# ---------------------------------------------------------------------------


def _legacy_decode_tlv(data: bytes, offset: int = 0):
    """The old decoder: every value is a fresh ``bytes`` slice."""
    if offset >= len(data):
        raise BerError("empty input where TLV expected")
    tag = Tag.from_octet(data[offset])
    offset += 1
    if offset >= len(data):
        raise BerError("truncated TLV: missing length")
    first = data[offset]
    offset += 1
    if first < 0x80:
        length = first
    elif first == 0x80:
        raise BerError("indefinite lengths are not supported")
    else:
        nbytes = first & 0x7F
        if offset + nbytes > len(data):
            raise BerError("truncated TLV: length bytes missing")
        length = int.from_bytes(data[offset : offset + nbytes], "big")
        offset += nbytes
    if offset + length > len(data):
        raise BerError("truncated TLV")
    return tag, data[offset : offset + length], offset + length


def _legacy_tree(data: bytes):
    """Fully expand a TLV stream with the legacy slice decoder."""
    out = []
    offset = 0
    while offset < len(data):
        tag, value, offset = _legacy_decode_tlv(data, offset)
        if tag.constructed:
            out.append((tag.octet, _legacy_tree(value)))
        else:
            out.append((tag.octet, value))
    return out


def _zero_copy_tree(data):
    """The same expansion through the zero-copy TlvReader."""
    out = []
    r = TlvReader(data)
    while not r.at_end():
        tag, value = r.read()
        if tag.constructed:
            out.append((tag.octet, _zero_copy_tree(value)))
        else:
            out.append((tag.octet, bytes(value)))
    return out


# Random nested TLV trees: leaves are primitives, nodes are SEQUENCEs.
_tlv_tree = st.recursive(
    st.binary(max_size=24).map(ber.encode_octet_string),
    lambda children: st.lists(children, max_size=5).map(ber.encode_sequence),
    max_leaves=20,
)


# A corpus message for every protocol op the codec supports.
CORPUS = [
    LdapMessage(1, BindRequest(3, "cn=admin", "simple", b"secret")),
    LdapMessage(1, BindRequest(3, "", "GSI", b"\x00\x01token")),
    LdapMessage(1, BindResponse(LdapResult(), server_credentials=b"proof")),
    LdapMessage(9, UnbindRequest()),
    LdapMessage(
        2,
        SearchRequest(
            base="o=Grid",
            scope=Scope.ONELEVEL,
            size_limit=50,
            time_limit=10,
            types_only=True,
            filter=parse_filter("(&(objectclass=computer)(load5<=2.0))"),
            attributes=("cn", "load5"),
        ),
    ),
    LdapMessage(
        2,
        SearchRequest(
            base="o=Grid",
            filter=parse_filter("(|(system=*linux*)(!(hn=host*)))"),
        ),
    ),
    LdapMessage(
        2,
        SearchResultEntry.from_entry(
            Entry("hn=hostX", objectclass=["computer"], hn="hostX", cpucount=4)
        ),
    ),
    LdapMessage(2, SearchResultReference(("ldap://h1/o=A", "ldap://h2/o=B"))),
    LdapMessage(
        2,
        SearchResultDone(
            LdapResult(ResultCode.REFERRAL, "", "try", ("ldap://h:1389/o=X",))
        ),
    ),
    LdapMessage(
        3,
        ModifyRequest(
            "hn=hostX",
            (
                (ModifyRequest.OP_REPLACE, "load5", ("1.5",)),
                (ModifyRequest.OP_ADD, "note", ("a", "b")),
                (ModifyRequest.OP_DELETE, "old", ()),
            ),
        ),
    ),
    LdapMessage(3, ModifyResponse(LdapResult(ResultCode.NO_SUCH_OBJECT))),
    LdapMessage(
        4,
        AddRequest.from_entry(Entry("hn=r1, o=O", objectclass="computer", hn="r1")),
    ),
    LdapMessage(4, AddResponse(LdapResult(ResultCode.ENTRY_ALREADY_EXISTS))),
    LdapMessage(5, DeleteRequest("hn=hostX, o=O1")),
    LdapMessage(5, DeleteResponse(LdapResult())),
    LdapMessage(6, AbandonRequest(3)),
    LdapMessage(7, ExtendedRequest("1.2.3.4", b"payload")),
    LdapMessage(7, ExtendedResponse(LdapResult(), "1.2.3.4.5", b"resp")),
    LdapMessage(
        8,
        UnbindRequest(),
        (
            Control("2.16.840.1.113730.3.4.3", True, b"\x01\x02"),
            Control("1.2.3", False, b""),
        ),
    ),
    LdapMessage(
        2,
        SearchResultEntry.from_entry(
            Entry("cn=naïve", cn="naïve", note="héllo wörld")
        ),
    ),
]


class TestZeroCopyEquivalence:
    @settings(max_examples=200)
    @given(_tlv_tree)
    def test_random_nested_tlvs(self, blob):
        assert _zero_copy_tree(memoryview(blob)) == _legacy_tree(blob)
        assert _zero_copy_tree(blob) == _legacy_tree(blob)

    @pytest.mark.parametrize("msg", CORPUS, ids=lambda m: type(m.op).__name__)
    def test_corpus_decodes_identically(self, msg):
        wire = encode_message(msg)
        assert _zero_copy_tree(memoryview(wire)) == _legacy_tree(wire)
        # bytes and memoryview inputs both decode to the original message
        assert decode_message(wire) == msg
        assert decode_message(memoryview(wire)) == msg

    def test_decode_tlv_value_type_follows_input(self):
        wire = ber.encode_octet_string(b"abc")
        _, v_bytes, _ = ber.decode_tlv(wire)
        _, v_view, _ = ber.decode_tlv(memoryview(wire))
        assert type(v_bytes) is bytes
        assert type(v_view) is memoryview
        assert bytes(v_view) == v_bytes == b"abc"


def _assert_no_memoryview(obj, path="message"):
    """Recursively reject memoryview in any decoded field."""
    assert not isinstance(obj, memoryview), f"memoryview leaked at {path}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for f in dataclasses.fields(obj):
            _assert_no_memoryview(getattr(obj, f.name), f"{path}.{f.name}")
    elif isinstance(obj, (tuple, list)):
        for i, item in enumerate(obj):
            _assert_no_memoryview(item, f"{path}[{i}]")
    elif hasattr(obj, "clauses"):  # And/Or filter nodes
        for i, item in enumerate(obj.clauses):
            _assert_no_memoryview(item, f"{path}.clauses[{i}]")


class TestNoViewLeaks:
    @pytest.mark.parametrize("msg", CORPUS, ids=lambda m: type(m.op).__name__)
    def test_decoded_fields_are_bytes_or_str(self, msg):
        # memoryview == bytes compares content, so equality round-trips
        # would pass even if a view leaked; the types must be checked.
        decoded = decode_message(memoryview(encode_message(msg)))
        _assert_no_memoryview(decoded)

    def test_reader_internals_are_views(self):
        # The *internal* surface is view-based (that is the zero-copy
        # part); only the leaf accessors materialize.
        r = TlvReader(memoryview(ber.encode_sequence(ber.encode_octet_string("x"))))
        assert isinstance(r.remaining(), memoryview)
        seq = r.read_sequence()
        assert isinstance(seq.remaining(), memoryview)
        value = seq.read_octet_string()
        assert type(value) is bytes


# ---------------------------------------------------------------------------
# DN intern cache
# ---------------------------------------------------------------------------


@pytest.fixture
def small_intern_cache():
    base = intern_cache_stats()["capacity"]
    configure_intern_cache(0)  # flush
    configure_intern_cache(4)
    yield
    configure_intern_cache(0)
    configure_intern_cache(base)


class TestDnInternCache:
    def test_hit_returns_shared_normalized_dn(self, small_intern_cache):
        first = DN.parse("hn=HostX, o=Grid")
        before = intern_cache_stats()
        second = DN.parse("hn=HostX, o=Grid")
        after = intern_cache_stats()
        assert second is first  # shared immutable object, memos included
        assert after["hits"] == before["hits"] + 1
        assert first.normalized() == DN.parse("HN=hostx,O=GRID").normalized()
        # differently-written equivalents are distinct cache keys but
        # equal DNs
        assert DN.parse("hn=hostx,o=grid") == first

    def test_bounded_size_and_evictions(self, small_intern_cache):
        start = intern_cache_stats()["evictions"]
        for i in range(10):
            DN.parse(f"hn=h{i}, o=Grid")
        stats = intern_cache_stats()
        assert stats["size"] <= 4
        assert stats["evictions"] >= start + 6

    def test_disabled_cache_still_parses(self, small_intern_cache):
        configure_intern_cache(0)
        dn = DN.parse("hn=h1, o=Grid")
        assert str(dn) == "hn=h1, o=Grid"
        assert intern_cache_stats()["size"] == 0

    def test_escaped_and_fast_path_agree(self, small_intern_cache):
        # same DN written with and without escapes: equal after parse
        assert DN.parse(r"cn=a\2cb, o=G") == DN.parse("cn=a\\,b, o=G")
        with pytest.raises(Exception):
            DN.parse("cn=a=b, o=G")  # unescaped '=' rejected on both paths


# ---------------------------------------------------------------------------
# Entry encode cache: invalidation through the ChangeOp choke point
# ---------------------------------------------------------------------------


def _cell_of(dit, dn):
    entries = dit.search(dn, Scope.BASE)
    assert len(entries) == 1
    return entries[0]._wire


class TestEncodeCacheInvalidation:
    def make_dit(self):
        dit = DIT()
        dit.add(Entry("o=Grid", objectclass="organization", o="Grid"))
        dit.add(Entry("hn=h1, o=Grid", objectclass="computer", hn="h1"))
        return dit

    def test_add_attaches_fresh_cell(self):
        dit = self.make_dit()
        cell = _cell_of(dit, "hn=h1, o=Grid")
        assert isinstance(cell, WireCache) and cell.body is None

    def test_search_copies_share_the_cell(self):
        dit = self.make_dit()
        a = _cell_of(dit, "hn=h1, o=Grid")
        b = _cell_of(dit, "hn=h1, o=Grid")
        assert a is b

    def test_replace_invalidates(self):
        dit = self.make_dit()
        cell = _cell_of(dit, "hn=h1, o=Grid")
        cell.body = b"stale"
        dit.replace(Entry("hn=h1, o=Grid", objectclass="computer", hn="h1", load5="2"))
        fresh = _cell_of(dit, "hn=h1, o=Grid")
        assert fresh is not cell and fresh.body is None

    def test_modify_invalidates(self):
        dit = self.make_dit()
        cell = _cell_of(dit, "hn=h1, o=Grid")
        cell.body = b"stale"
        dit.modify("hn=h1, o=Grid", lambda e: e.put("load5", "3"))
        fresh = _cell_of(dit, "hn=h1, o=Grid")
        assert fresh is not cell and fresh.body is None

    def test_delete_removes_entry(self):
        dit = self.make_dit()
        cell = _cell_of(dit, "hn=h1, o=Grid")
        cell.body = b"stale"
        dit.delete("hn=h1, o=Grid")
        assert not dit.exists("hn=h1, o=Grid")

    def test_clear_removes_all(self):
        dit = self.make_dit()
        _cell_of(dit, "hn=h1, o=Grid").body = b"stale"
        dit.clear()
        assert len(dit) == 0

    def test_load_attaches_fresh_cells(self):
        dit = self.make_dit()
        cell = _cell_of(dit, "hn=h1, o=Grid")
        cell.body = b"stale"
        dit.load([Entry("hn=h1, o=Grid", objectclass="computer", hn="h1", note="x")])
        fresh = _cell_of(dit, "hn=h1, o=Grid")
        assert fresh is not cell and fresh.body is None

    def test_local_mutation_drops_the_copy_reference(self):
        dit = self.make_dit()
        [entry] = dit.search("hn=h1, o=Grid", Scope.BASE)
        assert entry._wire is not None
        entry.put("hn", "renamed")
        assert entry._wire is None
        # the stored entry is untouched
        assert _cell_of(dit, "hn=h1, o=Grid") is not None

    def test_projection_is_never_cached(self):
        dit = self.make_dit()
        [entry] = dit.search("hn=h1, o=Grid", Scope.BASE, attrs=["hn"])
        assert entry._wire is None

    def test_cached_body_matches_fresh_encoding(self):
        dit = self.make_dit()
        [entry] = dit.search("hn=h1, o=Grid", Scope.BASE)
        body = encode_search_entry(entry)
        assert encode_message_with_op(7, body) == encode_message(
            LdapMessage(7, SearchResultEntry.from_entry(entry))
        )


class TestIsTransparent:
    def test_open_policy_is_transparent(self):
        assert open_policy().is_transparent("anonymous")
        assert open_policy().is_transparent("cn=admin")

    def test_attr_restricted_is_not(self):
        policy = attribute_restricted_policy(["objectclass"], ["load5"], ["cn=ops"])
        assert not policy.is_transparent("anonymous")
        assert not policy.is_transparent("cn=ops")

    def test_unscoped_deny_is_not_transparent(self):
        policy = AccessPolicy([AccessRule.make("*", allow=False)], default_allow=True)
        assert not policy.is_transparent("anonymous")

    def test_default_allow_without_rules(self):
        assert AccessPolicy([], default_allow=True).is_transparent("x")
        assert not AccessPolicy([], default_allow=False).is_transparent("x")


# ---------------------------------------------------------------------------
# Capture-and-compare: fast lanes change timing, never bytes
# ---------------------------------------------------------------------------


class _RecordingConn:
    """Connection wrapper recording every received frame as bytes."""

    def __init__(self, inner):
        self.inner = inner
        self.frames = []

    def set_receiver(self, callback):
        def record(payload):
            self.frames.append(bytes(payload))
            callback(payload)

        self.inner.set_receiver(record)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _serve_and_capture(transport, encode_cache):
    """One fixed workload; returns every frame the client received."""
    dit = DIT(index_attrs=["hn"])
    dit.add(Entry("o=Grid", objectclass="organization", o="Grid"))
    for i in range(8):
        dit.add(
            Entry(
                f"hn=h{i}, o=Grid",
                objectclass="computer",
                hn=f"h{i}",
                load5=str(i / 10),
            )
        )
    server = LdapServer(DitBackend(dit), encode_cache=encode_cache)
    endpoint = make_endpoint(transport)
    try:
        port = endpoint.listen(0, server.handle_connection)
        recorder = _RecordingConn(endpoint.connect(("127.0.0.1", port)))
        client = LdapClient(recorder)
        # mixed workload: cacheable, filtered, projected, types-only,
        # size-limited — and repeated so the second pass hits the cache
        for _ in range(2):
            client.search("o=Grid", filter="(objectclass=computer)")
            client.search("o=Grid", filter="(hn=h3)")
            client.search("o=Grid", filter="(objectclass=*)", attrs=["hn"])
            client.search(
                "o=Grid",
                filter="(objectclass=computer)",
                size_limit=3,
                check=False,
            )
        client.unbind()
        return recorder.frames
    finally:
        endpoint.close()


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_wire_bytes_identical_with_and_without_fast_lanes(transport):
    cached = _serve_and_capture(transport, encode_cache=True)
    uncached = _serve_and_capture(transport, encode_cache=False)
    assert cached == uncached
    assert len(cached) > 10  # the workload actually produced traffic


def test_wire_bytes_identical_across_transports():
    frames = [_serve_and_capture(t, encode_cache=True) for t in TRANSPORTS]
    assert frames[0] == frames[1]


# ---------------------------------------------------------------------------
# BENCH_E21.json: the committed benchmark artifact keeps its schema
# ---------------------------------------------------------------------------


def test_bench_e21_schema():
    import json
    import pathlib

    path = pathlib.Path(__file__).parents[1] / "BENCH_E21.json"
    assert path.exists(), "BENCH_E21.json must be committed at the repo root"
    data = json.loads(path.read_text())
    assert data["experiment"] == "E21"
    assert isinstance(data["git"], str) and data["git"]
    assert data["runs"], "at least one workload rung"
    for run in data["runs"]:
        wl = run["workload"]
        assert wl["name"] and wl["base"] and wl["filters"] and wl["scopes"]
        for side in ("baseline", "fastpath"):
            summary = run[side]
            pct = summary["percentiles"]
            for key in ("p50_ms", "p95_ms", "p99_ms"):
                assert isinstance(pct[key], (int, float))
            assert isinstance(summary["throughput_rps"], (int, float))
            assert summary["completed"] > 0
        assert isinstance(run["speedup"], (int, float))
    assert data["open_loop"]["percentiles"]
    assert data["giis_topology"]["throughput_rps"] > 0
    if not data["quick"]:
        big = [
            r for r in data["runs"]
            if r["entries"] >= 10000 and r["users"] >= 500
        ]
        assert big and big[0]["speedup"] >= 1.5
