"""Observability subsystem + soft-state/transport regression tests.

Covers the metrics registry, trace spans, the GRIP-queryable
``cn=monitor`` subtree, and three regression fixes:

* an expired-but-unswept registration refreshed in place (no
  on_expire/on_register for the death-and-rebirth);
* ``TcpConnection.set_receiver`` draining its backlog outside the lock
  while the reader delivers newer frames (out-of-order delivery);
* ``GiisBackend._client_for`` leaking the dialed connection when the
  GSI bind fails;

plus the fail-closed handling of malformed chain-depth controls.
"""

import threading
import time

import pytest

from repro.giis.core import (
    CHAIN_DEPTH_OID,
    GiisBackend,
    MALFORMED_CHAIN_DEPTH,
    _read_chain_depth,
)
from repro.grip.messages import GrrpMessage
from repro.grip.registry import SoftStateRegistry
from repro.gris import FunctionProvider, GrisBackend
from repro.ldap.backend import DitBackend, RequestContext
from repro.ldap.client import LdapClient
from repro.ldap.dit import DIT, Scope
from repro.ldap.dn import DN
from repro.ldap.entry import Entry
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import Control, ResultCode, SearchRequest
from repro.ldap.server import LdapServer
from repro.net.clock import WallClock
from repro.net.sim import Simulator
from repro.net.tcp import TcpEndpoint
from repro.net.transport import ConnectionClosed
from repro.obs import (
    MetricsRegistry,
    MonitorBackend,
    MonitoredBackend,
    RingSink,
    Tracer,
)

CTX = RequestContext()


def wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


def req(base, scope=Scope.SUBTREE, filt="(objectclass=*)"):
    return SearchRequest(base=base, scope=scope, filter=parse_filter(filt))


def reg_msg(url="ldap://p1:2135/", ts=0.0, ttl=30.0, suffix="hn=r1, o=Grid"):
    return GrrpMessage(
        service_url=url,
        timestamp=ts,
        valid_until=ts + ttl,
        metadata={"suffix": suffix},
    )


# ---------------------------------------------------------------------------
# metrics primitives


class TestMetrics:
    def test_counter_identity_and_value(self):
        m = MetricsRegistry()
        c = m.counter("requests", {"op": "search"})
        assert m.counter("requests", {"op": "search"}) is c
        assert m.counter("requests", {"op": "bind"}) is not c
        c.inc()
        c.inc(2)
        assert c.value == 3
        assert c.full_name == "requests{op=search}"

    def test_gauge_and_gauge_fn(self):
        m = MetricsRegistry()
        g = m.gauge("depth")
        g.set(5)
        g.dec()
        assert g.value == 4
        live = [1, 2, 3]
        f = m.gauge_fn("live", lambda: len(live))
        assert f.value == 3
        live.append(4)
        assert f.value == 4

    def test_kind_conflict_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")

    def test_histogram_buckets_and_quantiles(self):
        m = MetricsRegistry()
        h = m.histogram("lat", buckets=(0.001, 0.01, 0.1, 1.0))
        for v in (0.0005, 0.005, 0.005, 0.05, 2.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(2.0605)
        cum = dict(h.cumulative())
        assert cum[0.001] == 1
        assert cum[0.01] == 3
        assert cum[0.1] == 4
        assert cum[1.0] == 4
        assert cum[float("inf")] == 5
        # Linear interpolation within the containing bucket: rank 2.5
        # sits 1.5/2 of the way through the (0.001, 0.01] bucket.
        assert h.quantile(0.5) == pytest.approx(0.00775)
        assert h.quantile(1.0) == 2.0  # overflow reports the observed max
        # Estimates never leave the observed [min, max] envelope.
        assert h.quantile(0.0) >= 0.0005

    def test_snapshot_shape(self):
        m = MetricsRegistry()
        m.counter("a").inc()
        m.histogram("b", buckets=(1.0,)).observe(0.5)
        snap = m.snapshot()
        assert snap["a"] == {"type": "counter", "value": 1.0}
        assert snap["b"]["count"] == 1 and snap["b"]["type"] == "histogram"

    def test_namespace_prefix(self):
        m = MetricsRegistry(namespace="giis1")
        m.counter("chained").inc()
        assert "giis1.chained" in m.snapshot()

    def test_unregister_drops_one_label_set(self):
        m = MetricsRegistry()
        m.gauge("age", {"provider": "p1"}).set(5)
        m.gauge("age", {"provider": "p2"}).set(7)
        assert m.unregister("age", {"provider": "p1"})
        assert m.get("age", {"provider": "p1"}) is None
        assert m.get("age", {"provider": "p2"}).value == 7
        assert not m.unregister("age", {"provider": "p1"})  # already gone
        assert not m.unregister("nope")
        # Re-registering after unregister yields a fresh instrument.
        fresh = m.gauge("age", {"provider": "p1"})
        assert fresh.value == 0

    def test_unregister_respects_namespace(self):
        m = MetricsRegistry(namespace="gris1")
        m.counter("x").inc()
        assert m.unregister("x")
        assert "gris1.x" not in m.snapshot()


class TestTracer:
    def test_span_tree_and_sink(self):
        sink = RingSink(capacity=16)
        clock = Simulator()
        tracer = Tracer(clock.now, sinks=(sink,))
        root = tracer.start("search", base="o=Grid")
        child = root.child("chain", fanout=2)
        child.finish()
        root.finish()
        spans = sink.spans()
        assert [s.name for s in spans] == ["chain", "search"]
        assert spans[0].trace_id == spans[1].trace_id
        assert spans[0].parent is root
        assert spans[1].tags["base"] == "o=Grid"

    def test_finish_idempotent_and_sink_errors_swallowed(self):
        tracer = Tracer(Simulator().now, sinks=(lambda s: 1 / 0,))
        span = tracer.start("op")
        span.finish()
        span.finish()  # no double emission, no exception

    def test_ring_capacity(self):
        sink = RingSink(capacity=3)
        tracer = Tracer(Simulator().now, sinks=(sink,))
        for i in range(5):
            tracer.start(f"s{i}").finish()
        assert [s.name for s in sink.spans()] == ["s2", "s3", "s4"]


# ---------------------------------------------------------------------------
# cn=monitor


class TestMonitorBackend:
    def test_entries_and_scopes(self):
        m = MetricsRegistry()
        m.counter("giis.chained").inc(7)
        mon = MonitorBackend(m, server_name="srv1")
        base = mon.search(req("cn=monitor", Scope.BASE), CTX)
        assert len(base.entries) == 1
        assert base.entries[0].first("servername") == "srv1"
        sub = mon.search(
            req("cn=monitor", filt="(mdsmetrictype=counter)"), CTX
        )
        assert len(sub.entries) == 1
        entry = sub.entries[0]
        assert entry.dn == DN.parse("mdsmetricname=giis.chained, cn=monitor")
        assert entry.first("mdsvalue") == "7"

    def test_labels_become_attributes(self):
        m = MetricsRegistry()
        m.counter("ldap.requests", {"op": "search"}).inc()
        mon = MonitorBackend(m)
        out = mon.search(
            req("cn=monitor", filt="(&(mdsmetric=ldap.requests)(op=search))"), CTX
        )
        assert len(out.entries) == 1
        assert out.entries[0].first("mdsmetricname") == "ldap.requests:op:search"

    def test_histogram_rendering(self):
        m = MetricsRegistry()
        h = m.histogram("lat", buckets=(0.01, 0.1))
        h.observe(0.05)
        h.observe(0.2)
        mon = MonitorBackend(m)
        (entry,) = mon.search(
            req("cn=monitor", filt="(mdsmetrictype=histogram)"), CTX
        ).entries
        assert entry.first("mdscount") == "2"
        assert entry.first("mdsbucket-0.1") == "1"
        assert entry.first("mdsbucket-inf") == "2"
        assert entry.first("mdsp50") == "0.1"

    def test_outside_base_is_no_such_object(self):
        mon = MonitorBackend(MetricsRegistry())
        out = mon.search(req("o=Elsewhere"), CTX)
        assert out.result.code == ResultCode.NO_SUCH_OBJECT

    def test_monitored_backend_routes_and_merges(self):
        dit = DIT()
        dit.add(Entry("o=Grid", objectclass="organization", o="Grid"))
        m = MetricsRegistry()
        m.counter("c").inc()
        wrapped = MonitoredBackend(DitBackend(dit), MonitorBackend(m))
        assert "cn=monitor" in wrapped.naming_contexts()
        data = wrapped.search(req("o=Grid"), CTX)
        assert len(data.entries) == 1
        mon = wrapped.search(req("cn=monitor"), CTX)
        assert len(mon.entries) == 2  # root + one metric
        # a root-based subtree search sees both worlds
        both = wrapped.search(req("", Scope.SUBTREE), CTX)
        dns = {str(e.dn) for e in both.entries}
        assert "o=Grid" in dns and "cn=monitor" in dns

    def test_monitor_subtree_read_only(self):
        from repro.ldap.protocol import AddRequest

        wrapped = MonitoredBackend(
            DitBackend(DIT()), MonitorBackend(MetricsRegistry())
        )
        result = wrapped.add(
            AddRequest.from_entry(Entry("cn=x, cn=monitor", objectclass="top")),
            CTX,
        )
        assert result.code == ResultCode.UNWILLING_TO_PERFORM


class TestMonitorOverGrip:
    """Acceptance: live counters served over the wire, next to the data."""

    def test_gris_serves_cn_monitor_over_tcp(self):
        metrics = MetricsRegistry()
        clock = WallClock()
        gris = GrisBackend("o=Grid", clock, metrics=metrics)
        gris.add_provider(
            FunctionProvider(
                "cpu",
                lambda: [Entry("hn=h1", objectclass="computer", hn="h1")],
                cache_ttl=60.0,
            )
        )
        backend = MonitoredBackend(
            gris, MonitorBackend(metrics, server_name="gris-1")
        )
        server = LdapServer(backend, clock=clock, metrics=metrics, name="gris-1")
        endpoint = TcpEndpoint(metrics=metrics)
        port = endpoint.listen(0, server.handle_connection)
        client = LdapClient(endpoint.connect(("127.0.0.1", port)))
        try:
            # The root DSE advertises both naming contexts.
            dse = client.search("", Scope.BASE, "(objectclass=*)")
            contexts = dse.entries[0].get("namingcontexts")
            assert "o=Grid" in contexts and "cn=monitor" in contexts

            # Ordinary data queries work unchanged.
            data = client.search("o=Grid", Scope.SUBTREE, "(objectclass=computer)")
            assert len(data.entries) == 1

            # BASE search under cn=monitor answers.
            root = client.search("cn=monitor", Scope.BASE, "(objectclass=*)")
            assert root.entries[0].first("servername") == "gris-1"

            # SUBTREE search returns live counters and histograms...
            out1 = client.search(
                "cn=monitor",
                Scope.SUBTREE,
                "(&(mdsmetric=ldap.requests)(op=search))",
            )
            v1 = int(out1.entries[0].first("mdsvalue"))
            hists = client.search(
                "cn=monitor", Scope.SUBTREE, "(mdsmetrictype=histogram)"
            )
            latency = [
                e
                for e in hists.entries
                if e.first("mdsmetric") == "ldap.request.seconds"
                and e.first("op") == "search"
            ]
            assert latency and int(latency[0].first("mdscount")) >= 1

            # ...that move across queries.
            out2 = client.search(
                "cn=monitor",
                Scope.SUBTREE,
                "(&(mdsmetric=ldap.requests)(op=search))",
            )
            v2 = int(out2.entries[0].first("mdsvalue"))
            assert v2 > v1

            # Attribute selection and types-only work on monitor entries.
            thin = client.search(
                "cn=monitor",
                Scope.SUBTREE,
                "(mdsmetric=gris.cache.hits)",
                attrs=["mdsvalue"],
            )
            assert thin.entries[0].attribute_names() == ["mdsvalue"]

            # Compatibility stats views read the same registry.
            assert server.stats.searches >= 6
            assert server.stats.entries_returned > 0
            assert gris.cache.stats.misses >= 1
            assert metrics.counter("tcp.frames.received").value > 0
            snap = metrics.snapshot()
            assert snap["ldap.requests{op=search}"]["value"] == server.stats.searches
        finally:
            client.unbind()
            endpoint.close()

    def test_tracer_wired_through_gris_search(self):
        sink = RingSink()
        clock = Simulator()
        tracer = Tracer(clock.now, sinks=(sink,))
        gris = GrisBackend("o=Grid", clock)
        gris.add_provider(
            FunctionProvider(
                "cpu", lambda: [Entry("hn=h1", objectclass="computer", hn="h1")]
            )
        )
        ctx = RequestContext()
        ctx.trace = tracer.start("ldap.search")
        gris.search(req("o=Grid"), ctx)
        ctx.trace.finish()
        names = [s.name for s in sink.spans()]
        assert "gris.provider" in names and "gris.collect" in names
        assert names[-1] == "ldap.search"


# ---------------------------------------------------------------------------
# regression: expired-but-unswept refresh must be a death-and-rebirth


class TestExpiredRefreshRebirth:
    def test_expire_and_register_both_fire(self):
        sim = Simulator()
        events = []
        reg = SoftStateRegistry(
            sim,
            on_register=lambda r: events.append(("register", r.first_seen)),
            on_expire=lambda r: events.append(("expire", r.service_url)),
        )
        assert reg.apply(reg_msg(ts=0.0, ttl=30.0))
        sim.run_until(31.0)  # past expiry; nothing swept yet (no reads)
        assert reg.apply(reg_msg(ts=31.0, ttl=30.0))
        assert events == [
            ("register", 0.0),
            ("expire", "ldap://p1:2135/"),
            ("register", 31.0),
        ]
        assert reg.stats_expired == 1
        record = reg.lookup("ldap://p1:2135/")
        assert record is not None
        assert record.refresh_count == 0  # a fresh life, not a refresh
        assert record.first_seen == 31.0

    def test_live_refresh_still_in_place(self):
        sim = Simulator()
        events = []
        reg = SoftStateRegistry(
            sim,
            on_register=lambda r: events.append("register"),
            on_expire=lambda r: events.append("expire"),
        )
        reg.apply(reg_msg(ts=0.0, ttl=30.0))
        sim.run_until(20.0)
        reg.apply(reg_msg(ts=20.0, ttl=30.0))
        assert events == ["register"]
        assert reg.lookup("ldap://p1:2135/").refresh_count == 1

    def test_grace_respected_for_rebirth(self):
        sim = Simulator()
        events = []
        reg = SoftStateRegistry(
            sim, grace=1.0, on_expire=lambda r: events.append("expire")
        )
        reg.apply(reg_msg(ts=0.0, ttl=30.0))
        sim.run_until(45.0)  # within the grace window: still alive
        reg.apply(reg_msg(ts=45.0, ttl=30.0))
        assert events == []
        assert reg.lookup("ldap://p1:2135/").refresh_count == 1


# ---------------------------------------------------------------------------
# regression: backlog drain must serialize with the reader thread


class TestReceiverSwapOrdering:
    def test_backlog_and_live_frames_stay_ordered(self):
        endpoint = TcpEndpoint()
        try:
            total = 300
            server_conns = []
            port = endpoint.listen(0, server_conns.append)
            conn = endpoint.connect(("127.0.0.1", port))
            assert wait_for(lambda: bool(server_conns))
            sc = server_conns[0]

            def pump():
                for i in range(total):
                    sc.send(i.to_bytes(4, "big"))
                    time.sleep(0.0003)

            sender = threading.Thread(target=pump, daemon=True)
            sender.start()
            time.sleep(0.03)  # let a backlog accumulate before any receiver

            got = []

            def slow_receiver(raw):
                if len(got) < 80:
                    # widen the race window: the reader thread is
                    # delivering newer frames while we drain the backlog
                    time.sleep(0.0005)
                got.append(int.from_bytes(raw, "big"))

            conn.set_receiver(slow_receiver)
            sender.join(10.0)
            assert wait_for(lambda: len(got) == total, timeout=10.0)
            assert got == list(range(total))
            conn.close()
        finally:
            endpoint.close()

    def test_swap_receiver_mid_stream(self):
        endpoint = TcpEndpoint()
        try:
            server_conns = []
            port = endpoint.listen(0, server_conns.append)
            conn = endpoint.connect(("127.0.0.1", port))
            assert wait_for(lambda: bool(server_conns))
            sc = server_conns[0]
            first, second = [], []
            conn.set_receiver(first.append)
            sc.send(b"a")
            assert wait_for(lambda: first == [b"a"])
            conn.set_receiver(second.append)
            sc.send(b"b")
            assert wait_for(lambda: second == [b"b"])
            assert first == [b"a"]
        finally:
            endpoint.close()


# ---------------------------------------------------------------------------
# regression: failed GSI bind must release the dialed connection


class _DeadConn:
    """A Connection whose first send fails (bind never leaves the host)."""

    def __init__(self):
        self.close_count = 0
        self.peer = ("child", 2135)
        self.local = ("giis", 0)

    def set_receiver(self, cb):
        pass

    def set_close_handler(self, cb):
        pass

    def send(self, raw):
        raise ConnectionClosed("dialed but immediately dead")

    def close(self):
        self.close_count += 1


class TestBindFailureCleanup:
    def _giis_with_credential(self, dialed):
        import random

        from repro.security import CertificateAuthority

        rng = random.Random(7)
        ca = CertificateAuthority("CN=TestCA", rng=rng, bits=256)
        cred = ca.issue("CN=giis", rng=rng, bits=256)

        def connector(url):
            conn = _DeadConn()
            dialed.append(conn)
            return conn

        sim = Simulator()
        return GiisBackend(
            "o=Grid", clock=sim, connector=connector, credential=cred
        )

    def test_connection_closed_and_not_cached(self):
        dialed = []
        giis = self._giis_with_credential(dialed)
        for attempt in range(3):  # every retry against the flaky child
            client = giis._client_for("ldap://child:2135/")
            assert client is None
        assert len(dialed) == 3
        assert all(c.close_count == 1 for c in dialed)  # no leaked sockets
        assert len(giis.pool) == 0  # no half-bound client pooled


# ---------------------------------------------------------------------------
# malformed chain-depth controls fail closed


class TestMalformedChainDepth:
    def _malformed_control(self):
        return Control(CHAIN_DEPTH_OID, False, b"\xff\x00garbage")

    def test_read_chain_depth_fails_closed(self):
        assert _read_chain_depth(()) == 0
        assert (
            _read_chain_depth((self._malformed_control(),))
            == MALFORMED_CHAIN_DEPTH
        )
        assert MALFORMED_CHAIN_DEPTH >= 1 << 20  # above any sane max depth

    def test_malformed_control_cannot_reset_cycle_depth(self):
        """A garbled control must not restart the chase: the GIIS answers
        locally instead of fanning out with a fresh depth of zero."""
        sim = Simulator()

        def must_not_dial(url):
            raise AssertionError("GIIS chained on a malformed depth control")

        giis = GiisBackend("o=Grid", clock=sim, connector=must_not_dial)
        giis.apply_grrp(reg_msg(url="ldap://child:2135/", suffix="hn=r1, o=Grid"))
        ctx = RequestContext(controls=(self._malformed_control(),))
        outcomes = []
        giis.submit_search(req("o=Grid"), ctx, outcomes.append)
        assert len(outcomes) == 1
        assert outcomes[0].result.ok  # partial results, not an error
        assert giis.stats_depth_limited == 1
        assert giis.stats_chained == 0

    def test_well_formed_depth_still_chains_until_limit(self):
        from repro.giis.core import _chain_depth_control

        depth = _read_chain_depth((_chain_depth_control(3),))
        assert depth == 3
