"""Request-executor semantics: cancellation tokens, the bounded worker
pool, per-request deadlines, Abandon, disconnect, and backpressure."""

import threading
import time

import pytest

from repro.giis.core import GiisBackend
from repro.gris.core import GrisBackend
from repro.gris.provider import FunctionProvider
from repro.ldap.backend import (
    Backend,
    RequestContext,
    SearchHandle,
    SearchOutcome,
)
from repro.ldap.client import LdapClient
from repro.ldap.dit import Scope
from repro.ldap.entry import Entry
from repro.ldap.executor import CancelToken, RequestExecutor
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import ResultCode, SearchRequest
from repro.ldap.server import LdapServer
from repro.net.sim import Simulator
from repro.net.simnet import SimNetwork
from repro.net.tcp import TcpEndpoint
from repro.obs.metrics import MetricsRegistry
from repro.testbed.vo import GridTestbed


class TestCancelToken:
    def test_cancel_is_sticky_and_idempotent(self):
        fired = []
        token = CancelToken()
        token.on_cancel(lambda: fired.append("a"))
        assert not token.cancelled and token.reason == ""
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled
        assert token.reason == "first"
        assert fired == ["a"]

    def test_late_observer_fires_immediately(self):
        token = CancelToken()
        token.cancel()
        fired = []
        token.on_cancel(lambda: fired.append(1))
        assert fired == [1]

    def test_observer_exception_does_not_break_cancel(self):
        token = CancelToken()
        fired = []
        token.on_cancel(lambda: 1 / 0)
        token.on_cancel(lambda: fired.append(1))
        token.cancel()
        assert token.cancelled and fired == [1]

    def test_deadline_arithmetic(self):
        token = CancelToken(deadline=10.0)
        assert not token.expired(9.9)
        assert token.expired(10.0)
        assert token.remaining(4.0) == 6.0
        assert token.remaining(12.0) == 0.0
        assert token.clamp(4.0, 100.0) == 6.0
        assert token.clamp(4.0, 2.0) == 2.0

    def test_unbounded_token(self):
        token = CancelToken()
        assert not token.expired(1e9)
        assert token.remaining(0.0) is None
        assert token.clamp(0.0, 7.0) == 7.0

    def test_request_context_cancelled_property(self):
        ctx = RequestContext()
        assert not ctx.cancelled  # no token at all
        ctx.token = CancelToken()
        assert not ctx.cancelled
        ctx.token.cancel()
        assert ctx.cancelled

    def test_search_handle_cancels_through_token(self):
        token = CancelToken()
        handle = SearchHandle(token)
        assert not handle.cancelled
        handle.cancel("client went away")
        assert handle.cancelled and token.reason == "client went away"


class TestRequestExecutor:
    def test_inline_runs_on_submitting_thread(self):
        metrics = MetricsRegistry()
        ex = RequestExecutor(workers=0, metrics=metrics, name="t")
        threads = []
        assert ex.inline
        assert ex.submit(lambda: threads.append(threading.current_thread()))
        assert threads == [threading.current_thread()]
        assert metrics.counter("ldap.executor.submitted", {"pool": "t"}).value == 1
        assert metrics.counter("ldap.executor.completed", {"pool": "t"}).value == 1

    def test_inline_task_exception_is_counted_not_raised(self):
        metrics = MetricsRegistry()
        ex = RequestExecutor(workers=0, metrics=metrics, name="t")
        assert ex.submit(lambda: 1 / 0)
        assert metrics.counter("ldap.executor.errors", {"pool": "t"}).value == 1
        assert metrics.counter("ldap.executor.completed", {"pool": "t"}).value == 1

    def test_pool_runs_tasks_on_worker_threads(self):
        ex = RequestExecutor(workers=2, name="pool")
        try:
            done = threading.Event()
            names = []

            def task():
                names.append(threading.current_thread().name)
                done.set()

            assert not ex.inline
            assert ex.submit(task)
            assert done.wait(5.0)
            assert names and names[0].startswith("pool-exec-")
        finally:
            ex.shutdown()

    def test_queue_overflow_rejects(self):
        metrics = MetricsRegistry()
        ex = RequestExecutor(workers=1, queue_limit=1, metrics=metrics, name="t")
        release = threading.Event()
        started = threading.Event()
        try:

            def block():
                started.set()
                release.wait(10.0)

            assert ex.submit(block)
            assert started.wait(5.0)  # the lone worker is now busy
            assert ex.submit(lambda: None)  # fills the queue
            assert not ex.submit(lambda: None)  # overflows
            assert (
                metrics.counter("ldap.executor.rejected", {"pool": "t"}).value == 1
            )
        finally:
            release.set()
            ex.shutdown()

    def test_shutdown_refuses_new_work(self):
        ex = RequestExecutor(workers=1, name="t")
        ex.shutdown()
        assert not ex.submit(lambda: None)

    def test_bad_sizing_rejected(self):
        with pytest.raises(ValueError):
            RequestExecutor(workers=-1)
        with pytest.raises(ValueError):
            RequestExecutor(workers=1, queue_limit=0)


class SlowBackend(Backend):
    """Completes searches after a virtual-time delay (a slow provider).

    Honors the cancellation token: cancelled work never completes and is
    never counted, mirroring a backend that stopped mid-collection.
    """

    def __init__(self, clock, delay: float):
        self.clock = clock
        self.delay = delay
        self.completed = 0
        self.ignore_token = False

    def submit_search(self, req, ctx, on_done):
        token = ctx.token if ctx.token is not None else CancelToken()
        handle = SearchHandle(token)
        delay = self.delay if "slow" in req.base else 0.0

        def finish():
            if token.cancelled and not self.ignore_token:
                return
            self.completed += 1
            on_done(
                SearchOutcome(
                    entries=[Entry(req.base, objectclass="organization")]
                )
            )

        if delay:
            self.clock.call_later(delay, finish)
        else:
            finish()
        return handle


def sim_stack(delay=30.0, **server_kwargs):
    sim = Simulator(seed=7)
    net = SimNetwork(sim)
    server_node = net.add_node("server")
    client_node = net.add_node("client")
    backend = SlowBackend(sim, delay)
    server = LdapServer(backend, clock=sim, **server_kwargs)
    server_node.listen(389, server.handle_connection)
    client = LdapClient(client_node.connect(("server", 389)), driver=sim.step)
    return sim, client, server, backend


class TestDeadlines:
    def test_time_limit_exceeded_on_slow_backend(self):
        sim, client, server, backend = sim_stack(delay=30.0)
        results = []
        client.search_async(
            SearchRequest(base="o=slow", scope=Scope.SUBTREE, time_limit=2),
            lambda r, _e: results.append(r),
        )
        sim.run_for(60.0)
        assert len(results) == 1
        assert results[0].result.code == ResultCode.TIME_LIMIT_EXCEEDED
        assert server.metrics.counter("ldap.search.deadline_expired").value == 1
        assert backend.completed == 0  # the token stopped the work

    def test_late_completion_after_deadline_is_dropped(self):
        """A backend that ignores cancellation still cannot answer twice:
        the conclude-once protocol drops its late outcome."""
        sim, client, server, backend = sim_stack(delay=30.0)
        backend.ignore_token = True
        results = []
        client.search_async(
            SearchRequest(base="o=slow", scope=Scope.SUBTREE, time_limit=2),
            lambda r, _e: results.append(r),
        )
        sim.run_for(60.0)
        assert backend.completed == 1  # it did finish, eventually
        assert len(results) == 1  # but the client saw exactly one answer
        assert results[0].result.code == ResultCode.TIME_LIMIT_EXCEEDED

    def test_server_default_time_limit_applies(self):
        sim, client, server, backend = sim_stack(
            delay=30.0, default_time_limit=2.0
        )
        results = []
        client.search_async(  # note: no client-side time limit at all
            SearchRequest(base="o=slow", scope=Scope.SUBTREE),
            lambda r, _e: results.append(r),
        )
        sim.run_for(60.0)
        assert len(results) == 1
        assert results[0].result.code == ResultCode.TIME_LIMIT_EXCEEDED

    def test_fast_requests_answered_while_slow_one_pending(self):
        sim, client, server, backend = sim_stack(delay=30.0)
        order = []
        client.search_async(
            SearchRequest(base="o=slow", scope=Scope.SUBTREE, time_limit=5),
            lambda r, _e: order.append(("slow", r.result.code)),
        )
        client.search_async(
            SearchRequest(base="o=fast", scope=Scope.SUBTREE),
            lambda r, _e: order.append(("fast", r.result.code)),
        )
        sim.run_for(60.0)
        # the fast search completed first, despite being sent second on
        # the same connection
        assert order[0] == ("fast", int(ResultCode.SUCCESS))
        assert order[1] == ("slow", int(ResultCode.TIME_LIMIT_EXCEEDED))


class TestCancellation:
    def test_abandon_cancels_inflight_search(self):
        sim, client, server, backend = sim_stack(delay=30.0)
        results = []
        msg_id = client.search_async(
            SearchRequest(base="o=slow", scope=Scope.SUBTREE),
            lambda r, _e: results.append(r),
        )
        client._abandon(msg_id)
        sim.run_for(60.0)
        assert results == []  # RFC 4511: no response to an abandoned op
        assert backend.completed == 0
        assert (
            server.metrics.counter(
                "ldap.search.cancelled", {"reason": "abandon"}
            ).value
            == 1
        )

    def test_unbind_cancels_inflight_search(self):
        sim, client, server, backend = sim_stack(delay=30.0)
        client.search_async(
            SearchRequest(base="o=slow", scope=Scope.SUBTREE),
            lambda r, _e: None,
        )
        sim.run_for(1.0)  # the search reaches the server and is pending
        client.unbind()
        sim.run_for(60.0)
        assert backend.completed == 0
        assert (
            server.metrics.counter(
                "ldap.search.cancelled", {"reason": "disconnect"}
            ).value
            == 1
        )

    def test_abandon_stops_giis_chaining_fanout(self):
        """Abandoning a chained GIIS query aborts the collector: child
        timers die, late child answers are dropped, done() never fires."""
        tb = GridTestbed(seed=5)
        giis = tb.add_giis("giis", "o=Grid", child_timeout=5.0)
        for i in range(3):
            gris = tb.standard_gris(f"r{i}", f"hn=r{i}, o=Grid")
            tb.register(gris, giis, name=f"r{i}")
        tb.run(1.0)
        client = tb.client("u", giis)
        results = []
        msg_id = client.search_async(
            SearchRequest(
                base="o=Grid", filter=parse_filter("(objectclass=computer)")
            ),
            lambda r, _e: results.append(r),
        )
        client._abandon(msg_id)
        tb.run(20.0)
        assert results == []
        assert giis.backend.metrics.counter("giis.chain.cancelled").value == 1
        assert (
            giis.server.metrics.counter(
                "ldap.search.cancelled", {"reason": "abandon"}
            ).value
            == 1
        )
        # the same query still works for a live client afterwards
        out = tb.client("u2", giis).search(
            "o=Grid", filter="(objectclass=computer)"
        )
        assert len(out.entries) == 3

    def test_cancelled_token_stops_gris_provider_loop(self):
        sim = Simulator()
        gris = GrisBackend("o=G", clock=sim)
        token = CancelToken()
        calls = []

        def first():
            calls.append("first")
            token.cancel("test")
            return []

        def second():
            calls.append("second")
            return []

        gris.add_provider(FunctionProvider("first", first))
        gris.add_provider(FunctionProvider("second", second))
        ctx = RequestContext(token=token)
        gris.search(SearchRequest(base="o=G", scope=Scope.SUBTREE), ctx)
        assert calls == ["first"]  # loop stopped between providers
        assert gris.metrics.counter("gris.collect.cancelled").value == 1

    def test_sync_shim_answers_busy_for_incomplete_backend(self):
        class Never(Backend):
            def submit_search(self, req, ctx, on_done):
                token = ctx.token if ctx.token is not None else CancelToken()
                return SearchHandle(token)  # work never completes

        out = Never().search(
            SearchRequest(base="o=G", scope=Scope.SUBTREE), RequestContext()
        )
        assert out.result.code == ResultCode.BUSY

    def test_giis_sync_shim_serves_local_view(self):
        sim = Simulator()
        giis = GiisBackend("o=Grid", clock=sim)
        out = giis.search(
            SearchRequest(base="o=Grid", scope=Scope.SUBTREE), RequestContext()
        )
        assert out.result.ok  # local entries, no chaining, no BUSY


def _wait_until(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestBackpressureOverTcp:
    def test_queue_overflow_answers_busy(self):
        release = threading.Event()
        started = threading.Event()

        class Gated(Backend):
            def _search_impl(self, req, ctx):
                started.set()
                release.wait(10.0)
                return SearchOutcome()

        metrics = MetricsRegistry()
        executor = RequestExecutor(
            workers=1, queue_limit=1, metrics=metrics, name="tcp"
        )
        server = LdapServer(Gated(), metrics=metrics, executor=executor)
        endpoint = TcpEndpoint(metrics=metrics)
        try:
            port = endpoint.listen(0, server.handle_connection)
            client = LdapClient(endpoint.connect(("127.0.0.1", port)))
            codes = []
            done = threading.Event()

            def collect(result, _error):
                codes.append(int(result.result.code))
                if len(codes) == 3:
                    done.set()

            req = SearchRequest(base="o=G", scope=Scope.SUBTREE)
            client.search_async(req, collect)
            assert started.wait(5.0)  # the lone worker is now occupied
            client.search_async(req, collect)  # sits in the queue
            client.search_async(req, collect)  # overflows: BUSY
            assert _wait_until(lambda: codes.count(int(ResultCode.BUSY)) == 1)
            release.set()
            assert done.wait(10.0)
            assert sorted(codes) == sorted(
                [
                    int(ResultCode.SUCCESS),
                    int(ResultCode.SUCCESS),
                    int(ResultCode.BUSY),
                ]
            )
            assert metrics.counter("ldap.search.rejected").value == 1
        finally:
            release.set()
            endpoint.close()
            executor.shutdown()

    def test_endpoint_close_cancels_inflight(self):
        """Closing the client's endpoint propagates: the server connection
        closes and in-flight work is cancelled, not leaked."""

        class Hang(Backend):
            def submit_search(self, req, ctx, on_done):
                token = ctx.token if ctx.token is not None else CancelToken()
                return SearchHandle(token)  # never completes

        metrics = MetricsRegistry()
        server = LdapServer(Hang(), metrics=metrics)
        server_ep = TcpEndpoint(metrics=metrics)
        client_ep = TcpEndpoint()
        try:
            port = server_ep.listen(0, server.handle_connection)
            client = LdapClient(client_ep.connect(("127.0.0.1", port)))
            client.search_async(
                SearchRequest(base="o=G", scope=Scope.SUBTREE),
                lambda r, _e: None,
            )
            assert _wait_until(lambda: server.stats.searches == 1)
            client_ep.close()  # closes the dialed connection too
            assert _wait_until(
                lambda: metrics.counter(
                    "ldap.search.cancelled", {"reason": "disconnect"}
                ).value
                == 1
            )
        finally:
            client_ep.close()
            server_ep.close()
