"""Coverage for less-travelled paths across modules."""

import threading
import time

import pytest

from repro.ldap.dn import DN
from repro.ldap.entry import Entry
from repro.ldap.ldif import LdifError, format_entry, parse_ldif
from repro.ldap.url import LdapUrl
from repro.net.clock import WallClock
from repro.testbed import GridTestbed


class TestWallClock:
    def test_now_monotonic(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_call_later_fires(self):
        clock = WallClock()
        fired = threading.Event()
        clock.call_later(0.01, fired.set)
        assert fired.wait(2.0)

    def test_cancel_prevents_firing(self):
        clock = WallClock()
        fired = threading.Event()
        handle = clock.call_later(0.05, fired.set)
        handle.cancel()
        time.sleep(0.15)
        assert not fired.is_set()

    def test_cancel_idempotent(self):
        clock = WallClock()
        handle = clock.call_later(10.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_sleep(self):
        clock = WallClock()
        t0 = clock.now()
        clock.sleep(0.01)
        assert clock.now() - t0 >= 0.009


class TestLdifEdges:
    def test_url_valued_attribute_rejected(self):
        with pytest.raises(LdifError, match="URL-valued"):
            parse_ldif("dn: cn=x\nphoto:< file:///etc/passwd\n")

    def test_colon_leading_value_roundtrips(self):
        e = Entry("cn=x", cn="x", weird=":starts-with-colon")
        assert parse_ldif(format_entry(e))[0].first("weird") == ":starts-with-colon"

    def test_trailing_space_value_roundtrips(self):
        e = Entry("cn=x", cn="x", padded="value ")
        assert parse_ldif(format_entry(e))[0].first("padded") == "value "

    def test_empty_document(self):
        assert parse_ldif("") == []
        assert parse_ldif("# only a comment\n") == []


class TestLdapUrlEdges:
    def test_with_dn(self):
        u = LdapUrl("h", 2135).with_dn("hn=x")
        assert u.dn == DN.parse("hn=x")
        assert u.port == 2135

    def test_address(self):
        assert LdapUrl("h", 99).address == ("h", 99)

    def test_dn_with_spaces_roundtrips(self):
        u = LdapUrl("h", 2135, DN.parse("hn=host one, o=Big Org"))
        assert LdapUrl.parse(str(u)) == u


class TestRegistrantEdges:
    def test_register_with_delayed_start(self):
        from repro.grip.registration import Registrant
        from repro.net.sim import Simulator

        sim = Simulator()
        sent = []
        r = Registrant(
            sim, "u", lambda d, m: sent.append(sim.now()), interval=10.0, ttl=30.0
        )
        r.register_with("dir", immediately=False)
        sim.run_until(10.0)
        r.stop()
        assert sent == [10.0]  # first send after one interval, not at t=0


class TestGiisEdges:
    def test_referrals_from_children_propagate(self):
        """chain-mode parent + referral-mode child: the child's referral
        reaches the end client, who can chase it."""
        tb = GridTestbed(seed=91)
        parent = tb.add_giis("parent", "o=Grid", mode="chain")
        child = tb.add_giis("child", "o=A, o=Grid", mode="referral")
        tb.register(child, parent, name="child")
        gris = tb.standard_gris("leaf", "hn=leaf, o=A, o=Grid")
        tb.register(gris, child, name="leaf")
        tb.run(1.0)
        out = tb.client("u", parent).search(
            "o=Grid", filter="(objectclass=computer)", check=False
        )
        assert out.referrals  # child's referral surfaced through the parent
        target = LdapUrl.parse(out.referrals[0])
        got = tb.client("u", target).search(
            target.dn, filter="(objectclass=computer)"
        )
        assert got.entries[0].first("hn") == "leaf"

    def test_concurrent_queries_use_independent_collectors(self):
        tb = GridTestbed(seed=91)
        giis = tb.add_giis("giis", "o=Grid")
        for i in range(3):
            gris = tb.standard_gris(f"r{i}", f"hn=r{i}, o=Grid")
            tb.register(gris, giis, name=f"r{i}")
        tb.run(1.0)
        c1 = tb.client("u1", giis)
        c2 = tb.client("u2", giis)
        results = {}
        c1.search_async(
            __import__("repro.ldap.protocol", fromlist=["SearchRequest"]).SearchRequest(
                base="o=Grid",
                filter=__import__("repro.ldap.filter", fromlist=["parse"]).parse(
                    "(objectclass=computer)"
                ),
            ),
            lambda r, _e=None: results.__setitem__("a", r),
        )
        c2.search_async(
            __import__("repro.ldap.protocol", fromlist=["SearchRequest"]).SearchRequest(
                base="o=Grid",
                filter=__import__("repro.ldap.filter", fromlist=["parse"]).parse(
                    "(hn=r1)"
                ),
            ),
            lambda r, _e=None: results.__setitem__("b", r),
        )
        # NB: sim.run() would never drain with live registration streams;
        # advance bounded virtual time instead.
        tb.run(5.0)
        assert len(results["a"].entries) == 3
        assert len(results["b"].entries) == 1

    def test_sync_search_serves_local_view_only(self):
        from repro.ldap.backend import RequestContext
        from repro.ldap.protocol import SearchRequest

        tb = GridTestbed(seed=91)
        giis = tb.add_giis("giis", "o=Grid")
        gris = tb.standard_gris("r0", "hn=r0, o=Grid")
        tb.register(gris, giis, name="r0")
        tb.run(1.0)
        out = giis.backend.search(
            SearchRequest(base="o=Grid"), RequestContext()
        )
        dns = {str(e.dn) for e in out.entries}
        assert any(d.startswith("regid=") for d in dns)
        assert not any(d.startswith("hn=") for d in dns)  # no chaining

    def test_bad_mode_rejected(self):
        from repro.giis import GiisBackend
        from repro.net.sim import Simulator

        with pytest.raises(ValueError):
            GiisBackend("o=G", clock=Simulator(), mode="teleport")


class TestMds1PusherFailure:
    def test_push_failure_counted_when_central_dies(self):
        from repro.baselines import CentralDirectory, Mds1Pusher
        from repro.gris import HostConfig, StaticHostProvider
        from repro.ldap.client import LdapClient

        tb = GridTestbed(seed=92)
        central = CentralDirectory(tb.sim)
        tb.host("central").listen(389, central.server.handle_connection)
        node = tb.host("p")
        pusher = Mds1Pusher(
            tb.sim,
            LdapClient(node.connect(("central", 389))),
            "o=G",
            [StaticHostProvider(HostConfig("p"), base="hn=p")],
            interval=10.0,
        )
        pusher.start()
        tb.run(1.0)
        tb.net.node("central").crash()
        tb.net.partition(["p"], ["central"])
        tb.run(30.0)
        assert pusher.push_failures >= 1


class TestNwsEdges:
    def test_forecast_repr(self):
        from repro.gris import SeriesStore

        store = SeriesStore()
        store.observe("s", 5.0)
        store.observe("s", 5.0)
        assert "via" in repr(store.forecast("s"))

    def test_known_series(self):
        from repro.gris import SeriesStore

        store = SeriesStore()
        store.observe("a", 1.0)
        store.observe("b", 2.0)
        assert sorted(store.known_series()) == ["a", "b"]
