"""Tests for active network probing feeding the NWS forecaster bank."""

import pytest

from repro.gris.netpairs import NetworkPairsProvider
from repro.gris.netprobe import EchoResponder, NetworkProber
from repro.ldap.dit import Scope
from repro.ldap.dn import DN
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import SearchRequest
from repro.net.links import LinkModel
from repro.net.sim import Simulator
from repro.net.simnet import SimNetwork


def build(latency=0.020, loss=0.0, bandwidth=None, seed=0):
    sim = Simulator(seed=seed)
    net = SimNetwork(
        sim, default_link=LinkModel(latency=latency, loss=loss, bandwidth=bandwidth)
    )
    src = net.add_node("src")
    dst = net.add_node("dst")
    EchoResponder(dst)
    prober = NetworkProber(src, sim, timeout=2.0)
    return sim, net, src, dst, prober


class TestProbing:
    def test_rtt_probe_measures_link_latency(self):
        sim, net, src, dst, prober = build(latency=0.020)
        results = []
        prober.probe("dst", results.append)
        sim.run()
        assert results == [pytest.approx(0.020, rel=0.01)]
        assert prober.latency.samples("lat:src->dst") == 1

    def test_bandwidth_probe(self):
        # 10 MB/s link, 64 KiB each way
        sim, net, src, dst, prober = build(latency=0.0, bandwidth=10 * 1024 * 1024)
        results = []
        prober.probe_bandwidth("dst", results.append)
        sim.run()
        assert results[0] == pytest.approx(10.0, rel=0.05)

    def test_lost_probe_times_out(self):
        sim, net, src, dst, prober = build(loss=1.0)
        results = []
        prober.probe("dst", results.append)
        sim.run()
        assert results == [None]
        assert prober.probes_lost == 1
        assert prober.latency.samples("lat:src->dst") == 0

    def test_partition_probe_times_out(self):
        sim, net, src, dst, prober = build()
        net.partition(["src"], ["dst"])
        results = []
        prober.probe("dst", results.append)
        sim.run()
        assert results == [None]

    def test_survey_builds_series(self):
        sim, net, src, dst, prober = build(latency=0.010, seed=3)
        prober.survey(["dst"], period=1.0, rounds=10)
        sim.run()
        assert prober.latency.samples("lat:src->dst") == 10
        assert prober.bandwidth.samples("bw:src->dst") == 10
        forecast = prober.latency.forecast("lat:src->dst")
        assert forecast.value == pytest.approx(0.010, rel=0.05)

    def test_jittered_link_forecast_converges(self):
        sim = Simulator(seed=5)
        net = SimNetwork(sim, default_link=LinkModel(latency=0.040, jitter=0.020))
        src, dst = net.add_node("src"), net.add_node("dst")
        EchoResponder(dst)
        prober = NetworkProber(src, sim)
        prober.survey(["dst"], period=1.0, rounds=40)
        sim.run()
        forecast = prober.latency.forecast("lat:src->dst")
        # one-way estimate: base latency + ~half the mean jitter
        assert 0.040 <= forecast.value <= 0.062

    def test_probe_results_flow_into_provider(self):
        """The full §4.1 loop: probe -> series -> forecaster -> lazy
        GRIP entry for the queried endpoint pair."""
        sim, net, src, dst, prober = build(latency=0.015, seed=1)
        prober.survey(["dst"], period=1.0, rounds=5)
        sim.run()
        provider = NetworkPairsProvider(
            prober.bandwidth, prober.latency, namespace="nw=links"
        )
        out = provider.search(
            SearchRequest(
                base="nw=links, o=G",
                scope=Scope.SUBTREE,
                filter=parse_filter("(&(src=src)(dst=dst))"),
            ),
            suffix=DN.parse("o=G"),
        )
        assert len(out) == 1
        entry = out[0]
        assert float(entry.first("latency")) == pytest.approx(0.015, rel=0.05)
        assert float(entry.first("bandwidth")) > 0
