"""Cross-module property and stateful tests (hypothesis)."""

import string

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule

from repro.grip.messages import GrrpMessage, NotificationType
from repro.grip.registry import SoftStateRegistry
from repro.ldap.dit import DIT, Scope
from repro.ldap.dn import DN, RDN
from repro.ldap.entry import Entry
from repro.ldap.ldif import format_ldif, parse_ldif
from repro.net.sim import Simulator

_attr = st.sampled_from(["cn", "hn", "ou", "description", "system"])
_value = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=1000),
    min_size=1,
    max_size=20,
)
_name = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


@st.composite
def _entries(draw):
    depth = draw(st.integers(min_value=1, max_value=3))
    rdns = tuple(RDN.single(draw(_attr), draw(_name)) for _ in range(depth))
    entry = Entry(DN(rdns))
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        entry.add_value(draw(_attr), draw(_value))
    return entry


class TestLdifProperties:
    @given(st.lists(_entries(), max_size=8))
    @settings(max_examples=60)
    def test_roundtrip(self, entries):
        # dedupe DNs: LDIF files list each entry once
        seen, unique = set(), []
        for e in entries:
            if e.dn not in seen:
                seen.add(e.dn)
                unique.append(e)
        assert parse_ldif(format_ldif(unique)) == unique


class TestGrrpProperties:
    @given(
        _name,
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=0.1, max_value=1e5),
        st.dictionaries(_name, _name, max_size=4),
    )
    @settings(max_examples=60)
    def test_message_roundtrips_both_transports(self, url, ts, ttl, meta):
        m = GrrpMessage(
            service_url=f"ldap://{url}:2135/",
            timestamp=ts,
            valid_until=ts + ttl,
            metadata=meta,
        )
        assert GrrpMessage.from_bytes(m.to_bytes()) == m
        assert GrrpMessage.from_entry(m.to_entry("o=VO")) == m


class DitMachine(RuleBasedStateMachine):
    """Stateful model check: the DIT against a dict-of-entries model."""

    def __init__(self):
        super().__init__()
        self.dit = DIT()
        self.model = {}

    dns = Bundle("dns")

    @rule(target=dns, parent=st.none() | dns, name=_name)
    def make_dn(self, parent, name):
        base = DN.root() if parent is None else parent
        return base.child(RDN.single("cn", name))

    @rule(dn=dns, value=_name)
    def add_entry(self, dn, value):
        entry = Entry(dn, objectclass="top", cn=value)
        if dn in self.model:
            try:
                self.dit.add(entry)
                raise AssertionError("expected EntryExists")
            except Exception:
                pass
        else:
            self.dit.add(entry)
            self.model[dn] = entry

    @rule(dn=dns)
    def delete_entry(self, dn):
        has_children = any(
            other != dn and other.is_descendant_of(dn) for other in self.model
        )
        try:
            self.dit.delete(dn)
            assert dn in self.model and not has_children
            del self.model[dn]
        except Exception:
            assert dn not in self.model or has_children

    @rule(dn=dns)
    def search_subtree(self, dn):
        got = {e.dn for e in self.dit.search(dn, Scope.SUBTREE)}
        want = {d for d in self.model if d.is_within(dn)}
        assert got == want

    @rule(dn=dns)
    def search_onelevel(self, dn):
        got = {e.dn for e in self.dit.search(dn, Scope.ONELEVEL)}
        want = {
            d for d in self.model if not d.is_root() and d.parent() == dn
        }
        assert got == want

    @invariant()
    def size_matches(self):
        assert len(self.dit) == len(self.model)

    @invariant()
    def entries_retrievable(self):
        for dn, entry in self.model.items():
            assert self.dit.get(dn) == entry


TestDitStateful = DitMachine.TestCase
TestDitStateful.settings = settings(max_examples=30, stateful_step_count=30)


class RegistryMachine(RuleBasedStateMachine):
    """Soft-state registry vs a model of (url -> expiry) records."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.registry = SoftStateRegistry(self.sim)
        self.model = {}

    @rule(url=_name, ttl=st.floats(min_value=1.0, max_value=100.0))
    def register(self, url, ttl):
        now = self.sim.now()
        message = GrrpMessage(
            service_url=url, timestamp=now, valid_until=now + ttl
        )
        assert self.registry.apply(message)
        self.model[url] = now + ttl

    @rule(url=_name)
    def unregister(self, url):
        now = self.sim.now()
        message = GrrpMessage(
            service_url=url,
            notification_type=NotificationType.UNREGISTER,
            timestamp=now,
            valid_until=now,
        )
        changed = self.registry.apply(message)
        was_live = self.model.pop(url, None)
        assert changed == (was_live is not None and was_live >= now)

    @rule(dt=st.floats(min_value=0.1, max_value=50.0))
    def advance(self, dt):
        self.sim.run_until(self.sim.now() + dt)

    @invariant()
    def active_matches_model(self):
        now = self.sim.now()
        live = {u for u, exp in self.model.items() if exp >= now}
        assert set(self.registry.active_urls()) == live


TestRegistryStateful = RegistryMachine.TestCase
TestRegistryStateful.settings = settings(max_examples=30, stateful_step_count=30)
