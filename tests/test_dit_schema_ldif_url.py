"""Tests for the DIT store, schema validation, LDIF, and LDAP URLs."""

import pytest
from hypothesis import given, strategies as st

from repro.ldap import (
    DIT,
    DN,
    Entry,
    EntryExists,
    GRID_SCHEMA,
    LdapUrl,
    LdapUrlError,
    NoSuchEntry,
    ObjectClass,
    Schema,
    SchemaError,
    Scope,
    SizeLimitExceeded,
    format_ldif,
    parse_filter,
    parse_ldif,
)
from repro.ldap.dit import NotAllowedOnNonLeaf
from repro.ldap.ldif import LdifError, format_entry


def figure3_entries():
    """The hostX subtree from Figure 3 of the paper."""
    return [
        Entry("hn=hostX", objectclass="computer", hn="hostX", system="mips irix"),
        Entry(
            "queue=default, hn=hostX",
            objectclass=["service", "queue"],
            url="gram://hostX/default",
            queue="default",
            dispatchtype="immediate",
        ),
        Entry(
            "perf=load5, hn=hostX",
            objectclass=["perf", "loadaverage"],
            perf="load5",
            period=10,
            load5="3.2",
        ),
        Entry(
            "store=scratch, hn=hostX",
            objectclass=["storage", "filesystem"],
            store="scratch",
            free="33515 MB",
            path="/disks/scratch1",
        ),
    ]


class TestDit:
    def make(self):
        d = DIT()
        for e in figure3_entries():
            d.add(e)
        return d

    def test_add_get(self):
        d = self.make()
        e = d.get("hn=hostX")
        assert e.first("system") == "mips irix"

    def test_add_duplicate_rejected(self):
        d = self.make()
        with pytest.raises(EntryExists):
            d.add(Entry("hn=hostX", objectclass="computer"))

    def test_replace(self):
        d = self.make()
        d.replace(Entry("hn=hostX", objectclass="computer", system="linux"))
        assert d.get("hn=hostX").first("system") == "linux"

    def test_get_missing(self):
        with pytest.raises(NoSuchEntry):
            self.make().get("hn=nope")

    def test_children_sorted(self):
        kids = self.make().children("hn=hostX")
        assert [k.rdn.attr for k in kids] == ["perf", "queue", "store"]

    def test_delete_leaf(self):
        d = self.make()
        d.delete("perf=load5, hn=hostX")
        assert not d.exists("perf=load5, hn=hostX")

    def test_delete_nonleaf_requires_force(self):
        d = self.make()
        with pytest.raises(NotAllowedOnNonLeaf):
            d.delete("hn=hostX")
        d.delete("hn=hostX", force=True)
        assert len(d) == 0

    def test_modify(self):
        d = self.make()
        d.modify("perf=load5, hn=hostX", lambda e: e.put("load5", "1.1"))
        assert d.get("perf=load5, hn=hostX").first("load5") == "1.1"

    def test_modify_returns_copy(self):
        d = self.make()
        out = d.modify("hn=hostX", lambda e: e.put("system", "linux"))
        out.put("system", "tampered")
        assert d.get("hn=hostX").first("system") == "linux"

    def test_search_base(self):
        d = self.make()
        rs = d.search("hn=hostX", Scope.BASE)
        assert len(rs) == 1 and rs[0].dn == DN.parse("hn=hostX")

    def test_search_base_missing_raises(self):
        with pytest.raises(NoSuchEntry):
            self.make().search("hn=ghost", Scope.BASE)

    def test_search_onelevel(self):
        rs = self.make().search("hn=hostX", Scope.ONELEVEL)
        assert len(rs) == 3

    def test_search_subtree(self):
        rs = self.make().search("hn=hostX", Scope.SUBTREE)
        assert len(rs) == 4

    def test_search_subtree_from_root(self):
        rs = self.make().search(DN.root(), Scope.SUBTREE)
        assert len(rs) == 4

    def test_search_missing_base_subtree_empty(self):
        assert self.make().search("o=ghost", Scope.SUBTREE) == []

    def test_search_filter(self):
        rs = self.make().search(
            DN.root(), Scope.SUBTREE, parse_filter("(objectclass=storage)")
        )
        assert len(rs) == 1
        assert rs[0].first("path") == "/disks/scratch1"

    def test_search_attr_selection(self):
        rs = self.make().search(
            "hn=hostX", Scope.BASE, attrs=["objectclass"]
        )
        assert rs[0].has("objectclass") and not rs[0].has("system")

    def test_search_size_limit(self):
        d = self.make()
        with pytest.raises(SizeLimitExceeded):
            d.search(DN.root(), Scope.SUBTREE, size_limit=2)

    def test_search_results_are_copies(self):
        d = self.make()
        rs = d.search("hn=hostX", Scope.BASE)
        rs[0].put("system", "tampered")
        assert d.get("hn=hostX").first("system") == "mips irix"

    def test_glue_nodes(self):
        # A deep entry without stored ancestors is still reachable.
        d = DIT()
        d.add(Entry("a=1, b=2, c=3", objectclass="top", cn="x"))
        rs = d.search("c=3", Scope.SUBTREE)
        assert len(rs) == 1

    def test_load_and_dump(self):
        d = DIT()
        entries = figure3_entries()
        assert d.load(entries) == 4
        assert d.dump()[0].dn == DN.parse("hn=hostX")

    def test_clear(self):
        d = self.make()
        d.clear()
        assert len(d) == 0


class TestSchema:
    def test_figure3_validates(self):
        for e in figure3_entries():
            GRID_SCHEMA.validate(e)

    def test_missing_must(self):
        with pytest.raises(SchemaError, match="missing required"):
            GRID_SCHEMA.validate(Entry("hn=x", objectclass="computer"))

    def test_disallowed_attr(self):
        e = Entry("hn=x", objectclass="computer", hn="x", color="red")
        with pytest.raises(SchemaError, match="not allowed"):
            GRID_SCHEMA.validate(e)

    def test_no_objectclass(self):
        with pytest.raises(SchemaError, match="no objectclass"):
            GRID_SCHEMA.validate(Entry("hn=x", hn="x"))

    def test_unknown_class(self):
        with pytest.raises(SchemaError, match="unknown object class"):
            GRID_SCHEMA.validate(Entry("hn=x", objectclass="warpdrive", hn="x"))

    def test_abstract_alone_rejected(self):
        with pytest.raises(SchemaError, match="abstract"):
            GRID_SCHEMA.validate(Entry("cn=x", objectclass="top", cn="x"))

    def test_inheritance_pulls_superior_must(self):
        # queue extends service: url (from service) is required.
        e = Entry("queue=q, hn=x", objectclass=["service", "queue"], queue="q")
        with pytest.raises(SchemaError, match="url"):
            GRID_SCHEMA.validate(e)

    def test_metadata_attrs_always_allowed(self):
        e = Entry("hn=x", objectclass="computer", hn="x").stamp(now=1.0, ttl=5.0)
        GRID_SCHEMA.validate(e)

    def test_duplicate_registration_rejected(self):
        s = Schema([ObjectClass.make("a")])
        with pytest.raises(SchemaError):
            s.register(ObjectClass.make("A"))

    def test_unknown_superior_rejected(self):
        s = Schema()
        with pytest.raises(SchemaError):
            s.register(ObjectClass.make("b", superior="nope"))

    def test_dit_with_schema_enforces(self):
        d = DIT(schema=GRID_SCHEMA)
        with pytest.raises(SchemaError):
            d.add(Entry("hn=x", objectclass="computer"))
        d.add(Entry("hn=x", objectclass="computer", hn="x"))

    def test_is_valid(self):
        assert GRID_SCHEMA.is_valid(figure3_entries()[0]) is False or True  # exercised
        assert GRID_SCHEMA.is_valid(Entry("hn=x", hn="x")) is False


class TestLdif:
    def test_roundtrip_figure3(self):
        entries = figure3_entries()
        text = format_ldif(entries)
        back = parse_ldif(text)
        assert back == entries

    def test_base64_for_unsafe_values(self):
        e = Entry("cn=x", cn="x", note=" leading space")
        text = format_entry(e)
        assert "note:: " in text
        assert parse_ldif(text)[0].first("note") == " leading space"

    def test_unicode_value(self):
        e = Entry("cn=x", cn="x", owner="Gaël")
        assert parse_ldif(format_entry(e))[0].first("owner") == "Gaël"

    def test_long_line_folding(self):
        e = Entry("cn=x", cn="x", data="v" * 300)
        text = format_entry(e)
        assert all(len(line) <= 76 for line in text.splitlines())
        assert parse_ldif(text)[0].first("data") == "v" * 300

    def test_comments_skipped(self):
        text = "# comment\ndn: cn=x\ncn: x\n"
        assert len(parse_ldif(text)) == 1

    def test_multiple_records(self):
        text = "dn: cn=a\ncn: a\n\ndn: cn=b\ncn: b\n"
        assert len(parse_ldif(text)) == 2

    def test_record_must_start_with_dn(self):
        with pytest.raises(LdifError):
            parse_ldif("cn: x\n")

    def test_bad_base64(self):
        with pytest.raises(LdifError):
            parse_ldif("dn: cn=x\ncn:: !!!\n")

    def test_malformed_line(self):
        with pytest.raises(LdifError):
            parse_ldif("dn: cn=x\njunkline\n")


class TestLdapUrl:
    def test_basic_roundtrip(self):
        u = LdapUrl("hostX", 2135, DN.parse("hn=hostX, o=O1"))
        assert LdapUrl.parse(str(u)) == u

    def test_default_port_omitted(self):
        u = LdapUrl("h", 389)
        assert str(u) == "ldap://h/"
        assert LdapUrl.parse("ldap://h").port == 389

    def test_full_form(self):
        u = LdapUrl.parse("ldap://h:9999/o=Grid?cn,url?sub?(objectclass=*)")
        assert u.port == 9999
        assert u.dn == DN.parse("o=Grid")
        assert u.attrs == ("cn", "url")
        assert u.scope == Scope.SUBTREE
        assert u.filter == "(objectclass=*)"
        assert LdapUrl.parse(str(u)) == u

    def test_scope_names(self):
        assert LdapUrl.parse("ldap://h/??base").scope == Scope.BASE
        assert LdapUrl.parse("ldap://h/??one").scope == Scope.ONELEVEL

    def test_for_provider_unique_name(self):
        # §4.1: unique name = provider address + DN within provider.
        a = LdapUrl.for_provider("giis.o1.example", 2135, "hn=R1")
        b = LdapUrl.for_provider("giis.o2.example", 2135, "hn=R1")
        assert a != b and a.dn == b.dn

    @pytest.mark.parametrize(
        "bad",
        [
            "http://h/",
            "ldap://",
            "ldap://h:notaport/",
            "ldap://h:0/",
            "ldap://h/??badscope",
            "ldap://h/?a?sub?f?extra",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(LdapUrlError):
            LdapUrl.parse(bad)

    @given(
        st.text(alphabet="abcdefghijklmnop.-", min_size=1, max_size=20).filter(
            lambda s: s.strip("-.") == s
        ),
        st.integers(min_value=1, max_value=65535),
    )
    def test_roundtrip_property(self, host, port):
        u = LdapUrl(host, port, DN.parse("hn=hostX"))
        assert LdapUrl.parse(str(u)) == u
