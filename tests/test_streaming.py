"""The streaming search pipeline and the zero re-encode GIIS relay.

Covers the PR-10 path end to end:

* :class:`RawEntry` — the undecoded carrier (DN peek, lazy decode,
  buffer detach);
* the streaming backend adapter — streamed sequence equals the buffered
  list for *any* outcome, including size-limit partials and
  cancellation mid-stream (hypothesis);
* the GIIS relay lane — chained results are byte-identical with relay
  on and off, over both real transports;
* early abandon — the parent's size limit cuts off in-flight children;
* size-budget propagation — children see the parent's limit exactly
  when the front end is transparent;
* the compiled-filter hot path — ``compile_filter(f)(e)`` agrees with
  ``f.matches(e)`` for arbitrary filters (hypothesis);
* the client request-encode cache — identical bytes, counted hits.
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.giis.core import GiisBackend
from repro.grip.messages import GrrpMessage
from repro.ldap import ber
from repro.ldap.backend import (
    Backend,
    DitBackend,
    RequestContext,
    SearchOutcome,
)
from repro.ldap.client import LdapClient
from repro.ldap.dit import DIT, Scope
from repro.ldap.entry import Entry
from repro.ldap.executor import CancelToken
from repro.ldap.filter import compile_filter, parse as parse_filter
from repro.ldap.protocol import (
    LdapMessage,
    LdapResult,
    RawEntry,
    ResultCode,
    SearchRequest,
    SearchResultEntry,
    encode_message,
    encode_message_with_op,
    request_encode_stats,
    set_request_encode_cache,
)
from repro.ldap.server import LdapServer
from repro.net import make_endpoint
from repro.net.clock import WallClock
from repro.testbed import GridTestbed

from .test_filter import HOST, _filters

CTX = RequestContext(identity="CN=tester")
TRANSPORTS = ["threads", "reactor"]


def _entry_op_bytes(entry: Entry) -> bytes:
    """The SearchResultEntry protocol-op TLV for *entry*, via the real
    encoder (message framing stripped off)."""
    wire = encode_message(LdapMessage(7, SearchResultEntry.from_entry(entry)))
    _, body, _ = ber.decode_tlv(wire)
    r = ber.TlvReader(body)
    r.read_integer()  # message id
    return bytes(r.read_raw())


# ---------------------------------------------------------------------------
# RawEntry: the undecoded carrier
# ---------------------------------------------------------------------------


class TestRawEntry:
    ENTRY = Entry(
        "hn=hostX, o=Grid", objectclass=["computer"], hn="hostX", load5="3.2"
    )

    def test_dn_peek_without_full_decode(self):
        raw = RawEntry(_entry_op_bytes(self.ENTRY))
        assert raw.dn == "hn=hostX, o=Grid"
        assert raw._entry is None  # the peek did not decode the payload

    def test_lazy_decode_roundtrips(self):
        raw = RawEntry(_entry_op_bytes(self.ENTRY))
        entry = raw.to_entry()
        assert entry.dn == self.ENTRY.dn
        assert entry.first("load5") == "3.2"
        assert entry.get("objectclass") == ["computer"]

    def test_detach_copies_a_borrowed_view(self):
        backing = bytearray(_entry_op_bytes(self.ENTRY))
        raw = RawEntry(memoryview(backing))
        raw.detach()
        backing[:] = b"\x00" * len(backing)  # clobber the receive buffer
        assert raw.to_entry().first("hn") == "hostX"

    def test_reframing_is_byte_identical_to_full_encode(self):
        op = _entry_op_bytes(self.ENTRY)
        direct = encode_message(
            LdapMessage(42, SearchResultEntry.from_entry(self.ENTRY))
        )
        assert encode_message_with_op(42, op) == direct
        # and a memoryview op survives the concat
        assert encode_message_with_op(42, memoryview(op)) == direct

    def test_non_entry_op_refuses_decode(self):
        wire = encode_message(LdapMessage(1, SearchRequest(base="o=Grid")))
        _, body, _ = ber.decode_tlv(wire)
        r = ber.TlvReader(body)
        r.read_integer()
        raw = RawEntry(bytes(r.read_raw()))
        with pytest.raises(Exception):
            raw.to_entry()


# ---------------------------------------------------------------------------
# Streaming adapter: streamed sequence == buffered list, any outcome
# ---------------------------------------------------------------------------

_small_text = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=6,
)


@st.composite
def _outcomes(draw):
    n = draw(st.integers(min_value=0, max_value=6))
    entries = [
        Entry(f"hn=h{i}, o=Grid", objectclass="computer", hn=f"h{i}")
        for i in range(n)
    ]
    referrals = draw(st.lists(_small_text, max_size=3))
    code = draw(
        st.sampled_from(
            [
                ResultCode.SUCCESS,
                ResultCode.SIZE_LIMIT_EXCEEDED,  # partial delivery
                ResultCode.TIME_LIMIT_EXCEEDED,
                ResultCode.BUSY,
            ]
        )
    )
    return SearchOutcome(
        entries=entries,
        referrals=[f"ldap://{r}/" for r in referrals],
        result=LdapResult(code),
    )


class _FixedBackend(Backend):
    """A buffered backend that answers one canned outcome."""

    def __init__(self, outcome):
        self.outcome = outcome

    def _search_impl(self, req, ctx):
        return self.outcome

    def naming_contexts(self):
        return ["o=Grid"]


class TestStreamingAdapter:
    @given(_outcomes())
    @settings(max_examples=60, deadline=None)
    def test_streamed_sequence_equals_buffered_list(self, outcome):
        backend = _FixedBackend(outcome)
        req = SearchRequest(base="o=Grid")
        streamed, finals = [], []
        ctx = RequestContext(identity="x", token=CancelToken())
        backend.submit_search_stream(req, ctx, streamed.append, finals.append)
        assert streamed == outcome.entries
        assert len(finals) == 1
        final = finals[0]
        assert final.entries == []  # entries only via on_entry
        assert final.referrals == outcome.referrals
        assert final.result.code == outcome.result.code

    @given(_outcomes(), st.integers(min_value=0, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_cancel_mid_stream_stops_delivery_and_conclusion(
        self, outcome, cancel_after
    ):
        """A disconnect mid-stream (token cancel from inside on_entry)
        stops delivery; on_done never fires after cancellation —
        conclude-once holds."""
        backend = _FixedBackend(outcome)
        token = CancelToken()
        ctx = RequestContext(identity="x", token=token)
        streamed, finals = [], []

        def on_entry(entry):
            streamed.append(entry)
            if len(streamed) == cancel_after:
                token.cancel("client disconnected")

        backend.submit_search_stream(
            SearchRequest(base="o=Grid"), ctx, on_entry, finals.append
        )
        if cancel_after and len(outcome.entries) >= cancel_after:
            assert len(streamed) == cancel_after
            assert finals == []
        else:
            assert streamed == outcome.entries
            assert len(finals) == 1


# ---------------------------------------------------------------------------
# Compiled filters: one compile, same verdicts
# ---------------------------------------------------------------------------

_PROBES = [
    HOST,
    Entry("hn=empty"),
    Entry(
        "hn=hostY",
        objectclass=["computer", "server"],
        system="linux",
        cpucount="16",
        load5="0.1",
        memorysize="2 GB",
        description="spare rack",
    ),
]


class TestCompiledFilters:
    @given(_filters())
    @settings(max_examples=200, deadline=None)
    def test_compiled_matches_interpreted(self, f):
        match = compile_filter(f)
        for probe in _PROBES:
            assert match(probe) == f.matches(probe), (f, probe.dn)

    def test_none_filter_matches_everything(self):
        assert compile_filter(None)(HOST)

    def test_compiled_is_reusable_across_entries(self):
        match = compile_filter(parse_filter("(&(objectclass=computer)(load5<=4))"))
        assert match(HOST)
        assert not match(Entry("hn=empty"))


# ---------------------------------------------------------------------------
# Request-encode cache: identical bytes, counted hits
# ---------------------------------------------------------------------------


@pytest.fixture
def fresh_request_cache():
    set_request_encode_cache(True)
    yield
    set_request_encode_cache(True)


class TestRequestEncodeCache:
    def _req(self):
        return SearchRequest(
            base="o=Grid", filter=parse_filter("(objectclass=computer)")
        )

    def test_repeat_encodes_hit_and_match(self, fresh_request_cache):
        first = encode_message(LdapMessage(1, self._req()))
        before = request_encode_stats()
        second = encode_message(LdapMessage(1, self._req()))
        after = request_encode_stats()
        assert first == second
        assert after["hits"] >= before["hits"] + 2  # base DN + filter

    def test_disabled_cache_still_encodes_identically(self, fresh_request_cache):
        cached = encode_message(LdapMessage(3, self._req()))
        set_request_encode_cache(False)
        uncached = encode_message(LdapMessage(3, self._req()))
        assert cached == uncached
        stats = request_encode_stats()
        assert stats["base_cached"] == 0 and stats["filter_cached"] == 0


# ---------------------------------------------------------------------------
# The chained relay: byte-identical with relay on and off, both transports
# ---------------------------------------------------------------------------


class _RecordingConn:
    """Connection wrapper recording every received frame as bytes."""

    def __init__(self, inner):
        self.inner = inner
        self.frames = []
        self.lock = threading.Lock()

    def set_receiver(self, callback):
        def record(payload):
            with self.lock:
                self.frames.append(bytes(payload))
            callback(payload)

        self.inner.set_receiver(record)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _child_dit(first_host: int, n_hosts: int) -> DIT:
    dit = DIT(index_attrs=["hn"])
    dit.add(Entry("o=Grid", objectclass="organization", o="Grid"))
    for h in range(first_host, first_host + n_hosts):
        dit.add(
            Entry(
                f"hn=host{h}, o=Grid",
                objectclass="computer",
                hn=f"host{h}",
                load5=str(h / 10),
            )
        )
    return dit


def _chained_capture(transport: str, relay: bool):
    """One GIIS over two disjoint GRIS children on a real transport;
    returns every frame the client received for a fixed workload."""
    clock = WallClock()
    endpoint = make_endpoint(transport)
    closers = [endpoint.close]
    try:
        gris_ports = []
        for g in range(2):
            server = LdapServer(
                DitBackend(_child_dit(first_host=g * 3, n_hosts=3)),
                clock=clock,
                name=f"gris{g}",
            )
            gris_ports.append(endpoint.listen(0, server.handle_connection))
        giis = GiisBackend(
            "o=Grid",
            clock=clock,
            connector=lambda url: endpoint.connect((url.host, url.port)),
            child_timeout=30.0,
            relay=relay,
        )
        closers.append(giis.shutdown)
        now = clock.now()
        for port in gris_ports:
            giis.apply_grrp(
                GrrpMessage(
                    service_url=f"ldap://127.0.0.1:{port}/",
                    timestamp=now,
                    valid_until=now + 3600.0,
                    metadata={"suffix": "o=Grid"},
                )
            )
        front = LdapServer(giis, clock=clock, name="giis")
        giis_port = endpoint.listen(0, front.handle_connection)
        recorder = _RecordingConn(endpoint.connect(("127.0.0.1", giis_port)))
        client = LdapClient(recorder)
        client.search("o=Grid", filter="(objectclass=computer)")
        client.search("o=Grid", filter="(hn=host4)")
        client.search("o=Grid", filter="(load5>=0.2)")
        client.unbind()
        with recorder.lock:
            return list(recorder.frames), giis.metrics
    finally:
        for close in reversed(closers):
            close()


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_relay_wire_bytes_identical_on_and_off(transport):
    """The acceptance criterion: relayed results are byte-identical to
    the decode-and-re-encode path.  Child arrival order is not
    deterministic, so frames are compared as sorted multisets."""
    on_frames, on_metrics = _chained_capture(transport, relay=True)
    off_frames, _ = _chained_capture(transport, relay=False)
    assert sorted(on_frames) == sorted(off_frames)
    assert len(on_frames) > 8  # the workload actually produced traffic
    assert on_metrics.counter("giis.relay.entries").value > 0


def test_relay_wire_bytes_identical_across_transports():
    frames = [_chained_capture(t, relay=True)[0] for t in TRANSPORTS]
    assert sorted(frames[0]) == sorted(frames[1])


# ---------------------------------------------------------------------------
# Streamed == buffered through the whole chained stack (simulator)
# ---------------------------------------------------------------------------


def _build_vo(tb: GridTestbed, n_gris: int = 3, **giis_kwargs):
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO-A", **giis_kwargs)
    children = []
    for i in range(n_gris):
        gris = tb.standard_gris(f"r{i}", f"hn=r{i}, o=Grid", load_mean=0.5 + i)
        tb.register(gris, giis, interval=20.0, ttl=60.0, name=f"r{i}")
        children.append(gris)
    tb.run(1.0)
    return giis, children


def _shape(entry: Entry):
    return (
        str(entry.dn),
        tuple(sorted((a, tuple(vs)) for a, vs in entry.items())),
    )


class TestStreamedEqualsBuffered:
    @pytest.mark.parametrize(
        "filt",
        [
            "(objectclass=computer)",
            "(objectclass=*)",
            "(&(objectclass=loadaverage)(load5<=100))",
            "(hn=r1)",
        ],
    )
    def test_chained_entry_sets_match(self, filt):
        tb = GridTestbed(seed=3)
        giis, _ = _build_vo(tb)
        client = tb.client("user", giis)
        streamed = client.search("o=Grid", filter=filt)

        buffered_box = []
        req = SearchRequest(base="o=Grid", filter=parse_filter(filt))
        giis.backend.submit_search(
            req, RequestContext(identity="u"), buffered_box.append
        )
        tb.run(10.0)
        assert len(buffered_box) == 1
        assert sorted(map(_shape, streamed.entries)) == sorted(
            map(_shape, buffered_box[0].entries)
        )

    def test_relay_off_serves_the_same_entries(self):
        tb_on = GridTestbed(seed=4)
        giis_on, _ = _build_vo(tb_on)
        on = tb_on.client("u", giis_on).search("o=Grid", filter="(objectclass=*)")
        tb_off = GridTestbed(seed=4)
        giis_off, _ = _build_vo(tb_off, relay=False)
        off = tb_off.client("u", giis_off).search(
            "o=Grid", filter="(objectclass=*)"
        )
        assert sorted(map(_shape, on.entries)) == sorted(map(_shape, off.entries))
        assert giis_on.backend.metrics.counter("giis.relay.entries").value > 0
        assert giis_off.backend.metrics.counter("giis.relay.entries").value == 0


# ---------------------------------------------------------------------------
# Size budgets: propagation to children and early abandon
# ---------------------------------------------------------------------------


class _RecordingBackend(Backend):
    """A child backend that records every chained SearchRequest."""

    def __init__(self, n_entries: int = 4):
        self.requests = []
        self.entries = [
            Entry(f"hn=rec{i}, o=Grid", objectclass="computer", hn=f"rec{i}")
            for i in range(n_entries)
        ]

    def _search_impl(self, req, ctx):
        self.requests.append(req)
        limit = req.size_limit or len(self.entries)
        out = self.entries[:limit]
        code = (
            ResultCode.SIZE_LIMIT_EXCEEDED
            if limit < len(self.entries)
            else ResultCode.SUCCESS
        )
        return SearchOutcome(entries=out, result=LdapResult(code))

    def naming_contexts(self):
        return ["o=Grid"]


def _vo_with_recording_child(tb: GridTestbed, **giis_kwargs):
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO-A", **giis_kwargs)
    recorder = _RecordingBackend()
    node = tb.host("rec")
    server = LdapServer(recorder, clock=tb.sim, name="gris-rec")
    node.listen(2135, server.handle_connection)
    giis.backend.apply_grrp(
        GrrpMessage(
            service_url="ldap://rec:2135/",
            timestamp=tb.sim.now(),
            valid_until=tb.sim.now() + 3600.0,
            metadata={"suffix": "o=Grid"},
        )
    )
    return giis, recorder


class TestSizeBudget:
    def test_transparent_request_propagates_limit(self):
        tb = GridTestbed(seed=5)
        giis, recorder = _vo_with_recording_child(tb)
        client = tb.client("u", giis)
        client.search(
            "o=Grid", filter="(objectclass=computer)", size_limit=2, check=False
        )
        assert recorder.requests and recorder.requests[-1].size_limit == 2

    def test_projected_request_keeps_children_unlimited(self):
        """Attribute selection makes the parent non-transparent: a child
        truncating early could starve the parent's authoritative
        projection, so the budget must stay home."""
        tb = GridTestbed(seed=5)
        giis, recorder = _vo_with_recording_child(tb)
        client = tb.client("u", giis)
        client.search(
            "o=Grid",
            filter="(objectclass=computer)",
            attrs=["hn"],
            size_limit=2,
            check=False,
        )
        assert recorder.requests and recorder.requests[-1].size_limit == 0

    def test_child_size_limit_exceeded_is_partial_success(self):
        tb = GridTestbed(seed=5)
        giis, recorder = _vo_with_recording_child(tb)
        client = tb.client("u", giis)
        out = client.search(
            "o=Grid", filter="(objectclass=computer)", size_limit=3, check=False
        )
        # The child truncated at 3 and said sizeLimitExceeded; the
        # parent serves the partial set instead of dropping the child.
        assert out.result.code == ResultCode.SIZE_LIMIT_EXCEEDED
        assert len(out.entries) == 3
        assert giis.backend.stats_child_errors == 0

    def test_size_limit_abandons_outstanding_children(self):
        tb = GridTestbed(seed=6)
        giis, _ = _build_vo(tb, n_gris=4)
        client = tb.client("u", giis)
        out = client.search(
            "o=Grid", filter="(objectclass=computer)", size_limit=2, check=False
        )
        assert out.result.code == ResultCode.SIZE_LIMIT_EXCEEDED
        assert len(out.entries) == 2
        abandoned = giis.backend.metrics.counter("giis.child.abandoned")
        assert abandoned.value >= 1


# ---------------------------------------------------------------------------
# Committed benchmark artifact (E23)
# ---------------------------------------------------------------------------


def test_bench_e23_schema():
    import json
    import pathlib

    path = pathlib.Path(__file__).parents[1] / "BENCH_E23.json"
    assert path.exists(), "BENCH_E23.json must be committed at the repo root"
    data = json.loads(path.read_text())
    assert data["experiment"] == "E23"
    assert isinstance(data["git"], str) and data["git"]
    assert data["runs"], "at least one workload rung"
    for run in data["runs"]:
        wl = run["workload"]
        assert wl["name"] and wl["base"] and wl["filters"] and wl["scopes"]
        for side in ("relay_off", "relay_on"):
            summary = run[side]
            for key in ("p50_ms", "p95_ms", "p99_ms"):
                assert isinstance(summary["percentiles"][key], (int, float))
                assert isinstance(
                    summary["ttfe_percentiles"][key], (int, float)
                )
            assert isinstance(summary["throughput_rps"], (int, float))
            assert summary["completed"] > 0
        assert run["relay_on"]["giis_metrics"]["relay_entries"] > 0
        assert run["relay_off"]["giis_metrics"]["relay_entries"] == 0
        assert isinstance(run["speedup"], (int, float))
        assert isinstance(run["ttfe_ratio"], (int, float))
    if not data["quick"]:
        big = [
            r for r in data["runs"]
            if r["entries"] >= 10000 and r["users"] >= 500
        ]
        assert big and (
            big[0]["speedup"] >= 1.3 or big[0]["ttfe_ratio"] >= 2.0
        )
