"""§9: the three directory-configuration techniques, end to end."""


from repro.giis.bootstrap import (
    SlpDirectoryAdvertiser,
    discover_directories,
    discover_via_slp,
)
from repro.testbed import GridTestbed


def build_hierarchy(tb):
    root = tb.add_giis("root", "o=Grid", vo_name="Root")
    vo_a = tb.add_giis("giis-a", "o=A, o=Grid", vo_name="VO-A")
    vo_b = tb.add_giis("giis-b", "o=B, o=Grid", vo_name="VO-B")
    tb.register(vo_a, root, name="vo-a")
    tb.register(vo_b, root, name="vo-b")
    tb.run(1.0)
    return root, vo_a, vo_b


class TestHierarchicalDiscovery:
    def test_find_all_directories(self):
        tb = GridTestbed(seed=51)
        root, vo_a, vo_b = build_hierarchy(tb)
        client = tb.client("newcomer", root)
        urls = discover_directories(client, "o=Grid")
        hosts = sorted(u.host for u in urls)
        assert hosts == ["giis-a", "giis-b", "root"]

    def test_find_specific_vo(self):
        tb = GridTestbed(seed=51)
        root, *_ = build_hierarchy(tb)
        client = tb.client("newcomer", root)
        urls = discover_directories(client, "o=Grid", vo="VO-B")
        assert [u.host for u in urls] == ["giis-b"]

    def test_discovered_directory_accepts_registration(self):
        """The full §9 loop: discover the VO directory through the
        hierarchy, register with it, become discoverable."""
        tb = GridTestbed(seed=51)
        root, vo_a, _ = build_hierarchy(tb)
        client = tb.client("newhost", root)
        target = discover_directories(client, "o=Grid", vo="VO-A")[0]

        gris = tb.standard_gris("newhost-gris", "hn=newhost-gris, o=A, o=Grid")
        # register with the *discovered* URL rather than static config
        deployment = next(
            d for d in tb.deployments.values() if d.url.host == target.host
        )
        tb.register(gris, deployment, name="newhost-gris")
        tb.run(1.0)
        found = tb.client("user", vo_a).search(
            "o=A, o=Grid", filter="(hn=newhost-gris)"
        )
        assert len(found) == 1

    def test_no_directories_found(self):
        tb = GridTestbed(seed=51)
        gris = tb.standard_gris("lonely", "hn=lonely, o=Grid")
        client = tb.client("u", gris)
        assert discover_directories(client, "hn=lonely, o=Grid") == []


class TestSlpBootstrap:
    def test_local_directory_found(self):
        tb = GridTestbed(seed=52)
        giis = tb.add_giis("local-giis", "o=Grid", site="campus", vo_name="Campus")
        advertiser = SlpDirectoryAdvertiser(giis.node, giis.url, "Campus")
        newcomer = tb.host("laptop", site="campus")
        targeted, results = discover_via_slp(newcomer, tb.sim, timeout=1.0)
        tb.run(2.0)
        urls = results()
        assert targeted == 1
        assert len(urls) == 1 and urls[0].host == "local-giis"
        advertiser.stop()

    def test_cross_site_directory_not_found(self):
        """Site-scoped SLP only bootstraps *local* directories — the
        §11.2 limitation that makes SLP a bootstrap aid, not a VO
        discovery service."""
        tb = GridTestbed(seed=52)
        giis = tb.add_giis("remote-giis", "o=Grid", site="far-away")
        SlpDirectoryAdvertiser(giis.node, giis.url, "Far")
        newcomer = tb.host("laptop", site="campus")
        targeted, results = discover_via_slp(newcomer, tb.sim, timeout=1.0)
        tb.run(2.0)
        assert targeted == 0
        assert results() == []

    def test_on_done_callback(self):
        tb = GridTestbed(seed=52)
        giis = tb.add_giis("local-giis", "o=Grid", site="campus", vo_name="X")
        SlpDirectoryAdvertiser(giis.node, giis.url, "X")
        newcomer = tb.host("laptop", site="campus")
        got = []
        discover_via_slp(newcomer, tb.sim, timeout=1.0, on_done=got.append)
        tb.run(2.0)
        assert len(got) == 1 and got[0][0].host == "local-giis"

    def test_slp_then_hierarchy(self):
        """Bootstrap chain: SLP finds the local directory; the hierarchy
        search from there finds the VO directory to register with."""
        tb = GridTestbed(seed=53)
        root = tb.add_giis("root", "o=Grid", site="campus", vo_name="Root")
        vo = tb.add_giis("vo-dir", "o=VO1, o=Grid", site="campus", vo_name="VO1")
        tb.register(vo, root, name="vo1")
        SlpDirectoryAdvertiser(root.node, root.url, "Root")
        tb.run(1.0)

        laptop = tb.host("laptop", site="campus")
        _, results = discover_via_slp(laptop, tb.sim, timeout=1.0)
        tb.run(2.0)
        entry_point = results()[0]
        client = tb.client("laptop", entry_point)
        vo_urls = discover_directories(client, "o=Grid", vo="VO1")
        assert [u.host for u in vo_urls] == ["vo-dir"]
