"""Tests for the specialized aggregate directories (§5.2, §5.3)."""

import pytest

from repro.giis import (
    ClassAd,
    MatchmakerDirectory,
    NameService,
    RelationalDirectory,
    Table,
    UNDEFINED,
    evaluate,
    match,
)
from repro.giis.matchmaker import AdError
from repro.gris import FunctionProvider, SeriesStore
from repro.ldap.dn import DN
from repro.ldap.entry import Entry
from repro.net.sim import Simulator
from repro.testbed import GridTestbed


class TestTable:
    def rows(self):
        return Table(
            "t",
            [
                {"hn": "a", "load5": "0.5", "cpucount": "4"},
                {"hn": "b", "load5": "2.5", "cpucount": "8"},
                {"hn": "c", "load5": "10", "cpucount": "2"},
            ],
        )

    def test_where(self):
        assert self.rows().where(hn="b").column("cpucount") == ["8"]

    def test_where_num(self):
        t = self.rows().where_num("load5", "<=", 2.5)
        assert t.column("hn") == ["a", "b"]

    def test_where_num_ignores_non_numeric(self):
        t = Table("t", [{"x": "notanumber"}]).where_num("x", ">", 0)
        assert len(t) == 0

    def test_where_num_bad_op(self):
        with pytest.raises(ValueError):
            self.rows().where_num("load5", "~", 1)

    def test_project(self):
        t = self.rows().project(["hn"])
        assert t.rows[0] == {"hn": "a"}

    def test_order_by_numeric(self):
        t = self.rows().order_by("load5")
        assert t.column("hn") == ["a", "b", "c"]  # 0.5 < 2.5 < 10 numerically

    def test_join(self):
        left = Table("computer", [{"hn": "a", "cpu": "4"}, {"hn": "b", "cpu": "2"}])
        right = Table("link", [{"src": "a", "bw": "90"}, {"src": "a", "bw": "10"}])
        joined = left.join(right, on=[("hn", "src")])
        assert len(joined) == 2
        assert all(r["hn"] == "a" for r in joined)
        assert {r["link.bw"] for r in joined} == {"90", "10"}

    def test_join_requires_columns(self):
        with pytest.raises(ValueError):
            self.rows().join(self.rows(), on=[])

    def test_distinct(self):
        t = Table("t", [{"a": "1"}, {"a": "1"}, {"a": "2"}])
        assert len(t.distinct()) == 2


def deploy_relational(tb, index, n=3):
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO")
    giis.backend.add_index(index)
    rng_bw = [120.0, 30.0, 80.0]
    for i in range(n):
        host = f"r{i}"
        gris = tb.standard_gris(host, f"hn={host}, o=Grid", load_mean=0.2 + i * 1.5)
        # add a network link provider: host i has bandwidth rng_bw[i] to the hub
        store = SeriesStore(probe=lambda s, v=rng_bw[i % 3]: v, min_samples=1)
        store.observe(f"bw:{host}->hub", rng_bw[i % 3])
        gris.backend.add_provider(
            FunctionProvider(
                f"links-{host}",
                lambda host=host, bw=rng_bw[i % 3]: [
                    Entry(
                        DN.parse(f"link={host}:hub, nw=links"),
                        objectclass="networklink",
                        src=host,
                        dst="hub",
                        bandwidth=f"{bw:.1f}",
                    )
                ],
            )
        )
        tb.register(gris, giis, interval=20.0, ttl=60.0, name=host)
    tb.run(5.0)  # registrations + follow-up pulls complete
    return giis


class TestRelationalDirectory:
    def test_pull_on_registration(self):
        tb = GridTestbed(seed=5)
        index = RelationalDirectory()
        deploy_relational(tb, index)
        assert index.pulls == 3
        assert "computer" in index.tables()
        assert len(index.table("computer")) == 3
        assert len(index.table("loadaverage")) == 3

    def test_rows_carry_provenance(self):
        tb = GridTestbed(seed=5)
        index = RelationalDirectory()
        deploy_relational(tb, index)
        row = index.table("computer").where(hn="r0").rows[0]
        assert row["provider"] == "ldap://r0:2135/"
        assert row["dn"] == "hn=r0, o=Grid"

    def test_eviction_on_expiry(self):
        tb = GridTestbed(seed=5)
        index = RelationalDirectory()
        giis = deploy_relational(tb, index)
        # stop r1's registrations; wait past ttl
        for key, dep in tb.deployments.items():
            if dep.host == "r1":
                dep.stop_registrations()
        tb.run(120.0)
        assert len(index.table("computer")) == 2
        assert "r1" not in index.table("computer").column("hn")

    def test_paper_join_idle_computer_idle_network(self):
        """§5.3: 'find me an idle computer that is connected to an idle
        network' — load_mean makes r0 idle; bandwidth makes r0 well-connected."""
        tb = GridTestbed(seed=5)
        index = RelationalDirectory()
        deploy_relational(tb, index)
        result = index.idle_computers_on_idle_networks(
            max_load=1.0, min_bandwidth=100.0
        )
        hosts = set(result.column("hn"))
        assert hosts == {"r0"}  # r1/r2 too loaded; r1's net too slow anyway

    def test_refresh_updates_rows(self):
        tb = GridTestbed(seed=5)
        index = RelationalDirectory()
        giis = deploy_relational(tb, index)
        before = index.table("loadaverage").column("load5")
        tb.run(60.0)  # load drifts; cache TTLs expire
        index.refresh_all()
        tb.run(5.0)
        after = index.table("loadaverage").column("load5")
        assert before != after

    def test_periodic_refresh(self):
        tb = GridTestbed(seed=6)
        index = RelationalDirectory(refresh_interval=30.0)
        deploy_relational(tb, index, n=1)
        pulls_initial = index.pulls
        tb.run(100.0)
        assert index.pulls >= pulls_initial + 3


class TestClassAdLanguage:
    def test_literals_and_arith(self):
        ad = ClassAd()
        assert evaluate("1 + 2 * 3", ad) == 7.0
        assert evaluate("(1 + 2) * 3", ad) == 9.0
        assert evaluate("10 / 4", ad) == 2.5
        assert evaluate("7 % 3", ad) == 1.0
        assert evaluate("-2 + 5", ad) == 3.0

    def test_division_by_zero_is_undefined(self):
        assert isinstance(evaluate("1 / 0", ClassAd()), type(UNDEFINED))

    def test_comparisons(self):
        ad = ClassAd({"mem": 512})
        assert evaluate("mem >= 256", ad) is True
        assert evaluate("mem < 256", ad) is False

    def test_string_comparison_case_insensitive(self):
        ad = ClassAd({"arch": "INTEL"})
        assert evaluate('arch == "intel"', ad) is True

    def test_my_target_scopes(self):
        job = ClassAd({"imagesize": 100})
        machine = ClassAd({"memory": 512})
        assert evaluate("my.imagesize <= target.memory", job, machine) is True
        assert evaluate("target.memory - my.imagesize", job, machine) == 412.0

    def test_undefined_propagates(self):
        ad = ClassAd()
        result = evaluate("nosuch >= 5", ad)
        assert isinstance(result, type(UNDEFINED))

    def test_undefined_requirement_fails_match(self):
        job = ClassAd(requirements="target.gpu == true")
        machine = ClassAd({"memory": 512})  # no gpu attribute
        assert not job.requirements_met(machine)

    def test_boolean_shortcuts(self):
        ad = ClassAd({"a": 1})
        assert evaluate("a == 1 || nosuch > 5", ad) is True
        assert evaluate("a == 2 && nosuch > 5", ad) is False

    def test_not(self):
        ad = ClassAd({"busy": False})
        assert evaluate("!busy", ad) is True

    def test_numeric_strings_coerced(self):
        # LDAP values are strings; "3.2" must compare numerically.
        ad = ClassAd({"load5": "3.2"})
        assert evaluate("load5 < 10", ad) is True

    def test_parse_errors(self):
        with pytest.raises(AdError):
            evaluate("1 +", ClassAd())
        with pytest.raises(AdError):
            evaluate("(1", ClassAd())
        with pytest.raises(AdError):
            evaluate("@#$", ClassAd())

    def test_symmetric_match_and_rank(self):
        job = ClassAd(
            {"owner": "ian"},
            requirements="target.cpucount >= 2 && target.load5 <= 1.0",
            rank="target.cpucount",
        )
        machines = [
            ClassAd({"cpucount": 4, "load5": 0.5}, name="m4"),
            ClassAd({"cpucount": 8, "load5": 0.2}, name="m8"),
            ClassAd({"cpucount": 8, "load5": 5.0}, name="busy"),
            ClassAd(
                {"cpucount": 16, "load5": 0.1},
                requirements='target.owner == "karl"',
                name="picky",
            ),
        ]
        ranked = match(job, machines)
        assert [m.name for m, _ in ranked] == ["m8", "m4"]  # picky refused us
        assert ranked[0][1] == 8.0


class TestMatchmakerDirectory:
    def test_ads_built_from_pulled_entries(self):
        tb = GridTestbed(seed=7)
        index = MatchmakerDirectory()
        giis = tb.add_giis("giis", "o=Grid")
        giis.backend.add_index(index)
        for i, mean in enumerate([0.1, 3.0]):
            gris = tb.standard_gris(f"m{i}", f"hn=m{i}, o=Grid", load_mean=mean, cpu_count=4)
            tb.register(gris, giis, name=f"m{i}")
        tb.run(5.0)
        ads = index.machine_ads()
        assert len(ads) == 2
        # load5 folded into the host ad from the loadaverage child entry
        assert all(not isinstance(ad.value("load5"), type(UNDEFINED)) for ad in ads)

    def test_match_prefers_idle_machine(self):
        tb = GridTestbed(seed=7)
        index = MatchmakerDirectory()
        giis = tb.add_giis("giis", "o=Grid")
        giis.backend.add_index(index)
        for i, mean in enumerate([0.05, 4.0]):
            gris = tb.standard_gris(f"m{i}", f"hn=m{i}, o=Grid", load_mean=mean)
            tb.register(gris, giis, name=f"m{i}")
        tb.run(5.0)
        job = ClassAd(
            requirements="target.cpucount >= 1",
            rank="0 - target.load5",  # prefer lowest load
        )
        ranked = index.match(job)
        assert len(ranked) == 2
        assert ranked[0][0].value("hn") == "m0"


class TestNameService:
    def test_resolution(self):
        sim = Simulator()
        ns = NameService("o=Grid", sim, vo_name="VO")
        from tests.test_giis import reg_msg

        ns.backend.apply_grrp(reg_msg(url="ldap://r0:2135/", name="r0"))
        ns.backend.apply_grrp(reg_msg(url="ldap://r1:2135/", name="r1"))
        assert ns.names() == ["r0", "r1"]
        assert "r0" in ns
        url = ns.resolve("r0")
        assert url.host == "r0" and url.port == 2135
        assert ns.resolve("nope") is None
        assert len(ns) == 2

    def test_expiry_removes_names(self):
        sim = Simulator()
        ns = NameService("o=Grid", sim)
        from tests.test_giis import reg_msg

        ns.backend.apply_grrp(reg_msg(url="ldap://r0:2135/", name="r0", ttl=30.0))
        sim.run_until(31.0)
        ns.backend.registry.sweep()
        assert "r0" not in ns
