"""Unit and property tests for the BER codec."""

import pytest
from hypothesis import given, strategies as st

from repro.ldap import ber
from repro.ldap.ber import (
    BerError,
    Tag,
    TlvReader,
    decode_boolean,
    decode_integer,
    decode_tlv,
    decode_tlv_stream,
    encode_boolean,
    encode_integer,
    encode_null,
    encode_octet_string,
    encode_sequence,
    encode_tlv,
)


class TestTag:
    def test_universal_roundtrip(self):
        t = Tag.universal(4)
        assert Tag.from_octet(t.octet) == t

    def test_application_constructed(self):
        t = Tag.application(3)
        assert t.constructed
        assert t.octet == 0x63

    def test_context_primitive(self):
        t = Tag.context(0)
        assert t.octet == 0x80

    def test_high_tag_number_rejected(self):
        with pytest.raises(BerError):
            Tag(31)

    def test_high_tag_form_decode_rejected(self):
        with pytest.raises(BerError):
            Tag.from_octet(0x1F)

    def test_invalid_class_rejected(self):
        with pytest.raises(BerError):
            Tag(1, tag_class=0x55)


class TestLengths:
    def test_short_form(self):
        enc = encode_tlv(0x04, b"x" * 10)
        assert enc[1] == 10

    def test_long_form_128(self):
        enc = encode_tlv(0x04, b"x" * 128)
        assert enc[1] == 0x81
        assert enc[2] == 128

    def test_long_form_multi_byte(self):
        enc = encode_tlv(0x04, b"x" * 70000)
        tag, value, end = decode_tlv(enc)
        assert len(value) == 70000
        assert end == len(enc)

    def test_indefinite_length_rejected(self):
        with pytest.raises(BerError, match="indefinite"):
            decode_tlv(b"\x30\x80\x00\x00")

    def test_truncated_value(self):
        with pytest.raises(BerError, match="truncated"):
            decode_tlv(b"\x04\x05abc")

    def test_truncated_length(self):
        with pytest.raises(BerError, match="truncated"):
            decode_tlv(b"\x04")

    def test_empty_input(self):
        with pytest.raises(BerError):
            decode_tlv(b"")


class TestIntegers:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x00\x80"),
            (256, b"\x01\x00"),
            (-1, b"\xff"),
            (-128, b"\x80"),
            (-129, b"\xff\x7f"),
        ],
    )
    def test_known_encodings(self, value, expected):
        enc = encode_integer(value)
        assert enc[2:] == expected

    def test_decode_empty_rejected(self):
        with pytest.raises(BerError):
            decode_integer(b"")

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_roundtrip(self, value):
        tag, payload, _ = decode_tlv(encode_integer(value))
        assert decode_integer(payload) == value

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_minimal_encoding(self, value):
        # DER: no redundant leading octets.
        _, payload, _ = decode_tlv(encode_integer(value))
        if len(payload) > 1:
            assert not (payload[0] == 0x00 and not payload[1] & 0x80)
            assert not (payload[0] == 0xFF and payload[1] & 0x80)


class TestBooleansAndStrings:
    def test_boolean_roundtrip(self):
        for b in (True, False):
            _, payload, _ = decode_tlv(encode_boolean(b))
            assert decode_boolean(payload) is b

    def test_boolean_wrong_size(self):
        with pytest.raises(BerError):
            decode_boolean(b"\x00\x00")

    def test_octet_string_accepts_str(self):
        _, payload, _ = decode_tlv(encode_octet_string("héllo"))
        assert payload.decode("utf-8") == "héllo"

    def test_null(self):
        tag, payload, _ = decode_tlv(encode_null())
        assert payload == b""

    @given(st.binary(max_size=512))
    def test_octet_string_roundtrip(self, data):
        _, payload, _ = decode_tlv(encode_octet_string(data))
        assert payload == data


class TestSequencesAndReader:
    def test_nested_sequence(self):
        inner = encode_sequence([encode_integer(7)])
        outer = encode_sequence([inner, encode_octet_string(b"abc")])
        r = TlvReader(decode_tlv(outer)[1])
        inner_r = r.read_sequence()
        assert inner_r.read_integer() == 7
        inner_r.expect_end()
        assert r.read_octet_string() == b"abc"
        r.expect_end()

    def test_reader_expect_end_fails_on_trailing(self):
        body = encode_integer(1) + encode_integer(2)
        r = TlvReader(body)
        r.read_integer()
        with pytest.raises(BerError, match="trailing"):
            r.expect_end()

    def test_read_expect_wrong_tag(self):
        r = TlvReader(encode_integer(5))
        with pytest.raises(BerError, match="expected tag"):
            r.read_octet_string()

    def test_peek_does_not_consume(self):
        r = TlvReader(encode_integer(5))
        assert r.peek_tag().number == 2
        assert r.read_integer() == 5

    def test_peek_past_end(self):
        r = TlvReader(b"")
        with pytest.raises(BerError):
            r.peek_tag()

    def test_stream_decoding(self):
        blob = encode_integer(1) + encode_octet_string(b"x") + encode_null()
        tags = [t.number for t, _ in decode_tlv_stream(blob)]
        assert tags == [2, 4, 5]

    @given(
        st.lists(
            st.one_of(
                st.integers(min_value=-(2**31), max_value=2**31),
                st.binary(max_size=64),
                st.booleans(),
            ),
            max_size=12,
        )
    )
    def test_heterogeneous_sequence_roundtrip(self, items):
        parts = []
        for item in items:
            if isinstance(item, bool):
                parts.append(encode_boolean(item))
            elif isinstance(item, int):
                parts.append(encode_integer(item))
            else:
                parts.append(encode_octet_string(item))
        blob = encode_sequence(parts)
        tag, body, end = decode_tlv(blob)
        assert end == len(blob)
        r = TlvReader(body)
        out = []
        while not r.at_end():
            t, payload = r.read()
            if t.number == ber.TAG_BOOLEAN:
                out.append(decode_boolean(payload))
            elif t.number == ber.TAG_INTEGER:
                out.append(decode_integer(payload))
            else:
                out.append(payload)
        assert out == items


@st.composite
def _tlv_trees(draw, depth=0):
    """Random well-formed TLV blobs (nested up to 3 levels)."""
    if depth >= 3 or draw(st.booleans()):
        kind = draw(st.sampled_from(["int", "str", "bool", "null"]))
        if kind == "int":
            return encode_integer(draw(st.integers(-(2**40), 2**40)))
        if kind == "str":
            return encode_octet_string(draw(st.binary(max_size=32)))
        if kind == "bool":
            return encode_boolean(draw(st.booleans()))
        return ber.encode_null()
    children = draw(st.lists(_tlv_trees(depth=depth + 1), max_size=4))
    return encode_sequence(children)


class TestStructuredFuzz:
    @given(_tlv_trees())
    def test_wellformed_tlv_always_decodes(self, blob):
        tag, value, end = decode_tlv(blob)
        assert end == len(blob)

    @given(_tlv_trees(), st.integers(min_value=1, max_value=8))
    def test_truncation_always_detected(self, blob, cut):
        # The outermost definite length demands the full body, so any
        # tail truncation must raise.
        if cut < len(blob):
            with pytest.raises(BerError):
                decode_tlv(blob[:-cut])

    @given(_tlv_trees(), st.binary(min_size=1, max_size=8))
    def test_trailing_garbage_not_consumed(self, blob, junk):
        tag, value, end = decode_tlv(blob + junk)
        assert end == len(blob)
