"""Round-trip and error tests for the LDAP wire protocol codec."""

import pytest
from hypothesis import given, strategies as st

from repro.ldap.ber import TlvReader
from repro.ldap.dit import Scope
from repro.ldap.entry import Entry
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import (
    AbandonRequest,
    AddRequest,
    AddResponse,
    BindRequest,
    BindResponse,
    Control,
    DeleteRequest,
    DeleteResponse,
    ExtendedRequest,
    ExtendedResponse,
    LdapMessage,
    LdapResult,
    ModifyRequest,
    ModifyResponse,
    ProtocolError,
    ResultCode,
    SearchRequest,
    SearchResultDone,
    SearchResultEntry,
    SearchResultReference,
    UnbindRequest,
    decode_filter,
    decode_message,
    encode_filter,
    encode_message,
)


def roundtrip(msg: LdapMessage) -> LdapMessage:
    return decode_message(encode_message(msg))


class TestOpRoundtrips:
    def test_bind_simple(self):
        msg = LdapMessage(1, BindRequest(3, "cn=admin", "simple", b"secret"))
        assert roundtrip(msg) == msg

    def test_bind_sasl(self):
        msg = LdapMessage(1, BindRequest(3, "", "GSI", b"\x00\x01token"))
        assert roundtrip(msg) == msg

    def test_bind_response_with_credentials(self):
        msg = LdapMessage(
            1,
            BindResponse(LdapResult(ResultCode.SUCCESS), server_credentials=b"proof"),
        )
        assert roundtrip(msg) == msg

    def test_unbind(self):
        assert roundtrip(LdapMessage(9, UnbindRequest())) == LdapMessage(
            9, UnbindRequest()
        )

    def test_search_request_full(self):
        req = SearchRequest(
            base="o=Grid",
            scope=Scope.ONELEVEL,
            size_limit=50,
            time_limit=10,
            types_only=True,
            filter=parse_filter("(&(objectclass=computer)(load5<=2.0))"),
            attributes=("cn", "load5"),
        )
        msg = LdapMessage(2, req)
        assert roundtrip(msg) == msg

    def test_search_result_entry_from_entry(self):
        e = Entry("hn=hostX", objectclass=["computer"], hn="hostX", cpucount=4)
        msg = LdapMessage(2, SearchResultEntry.from_entry(e))
        back = roundtrip(msg)
        assert back.op.to_entry() == e

    def test_search_result_reference(self):
        msg = LdapMessage(2, SearchResultReference(("ldap://h1/o=A", "ldap://h2/o=B")))
        assert roundtrip(msg) == msg

    def test_search_done_with_referral(self):
        result = LdapResult(
            ResultCode.REFERRAL, "", "try elsewhere", ("ldap://h:1389/o=X",)
        )
        msg = LdapMessage(2, SearchResultDone(result))
        assert roundtrip(msg) == msg

    def test_modify(self):
        req = ModifyRequest(
            "hn=hostX",
            (
                (ModifyRequest.OP_REPLACE, "load5", ("1.5",)),
                (ModifyRequest.OP_ADD, "note", ("a", "b")),
                (ModifyRequest.OP_DELETE, "old", ()),
            ),
        )
        msg = LdapMessage(3, req)
        assert roundtrip(msg) == msg

    def test_modify_response(self):
        msg = LdapMessage(3, ModifyResponse(LdapResult(ResultCode.NO_SUCH_OBJECT)))
        assert roundtrip(msg) == msg

    def test_add(self):
        e = Entry("hn=r1, o=O", objectclass="computer", hn="r1")
        msg = LdapMessage(4, AddRequest.from_entry(e))
        back = roundtrip(msg)
        assert back.op.to_entry() == e

    def test_add_response(self):
        msg = LdapMessage(4, AddResponse(LdapResult(ResultCode.ENTRY_ALREADY_EXISTS)))
        assert roundtrip(msg) == msg

    def test_delete(self):
        msg = LdapMessage(5, DeleteRequest("hn=hostX, o=O1"))
        assert roundtrip(msg) == msg

    def test_delete_response(self):
        msg = LdapMessage(5, DeleteResponse(LdapResult()))
        assert roundtrip(msg) == msg

    def test_abandon(self):
        msg = LdapMessage(6, AbandonRequest(3))
        assert roundtrip(msg) == msg

    def test_extended(self):
        msg = LdapMessage(7, ExtendedRequest("1.2.3.4", b"payload"))
        assert roundtrip(msg) == msg

    def test_extended_response(self):
        msg = LdapMessage(
            7, ExtendedResponse(LdapResult(), "1.2.3.4.5", b"resp")
        )
        assert roundtrip(msg) == msg

    def test_controls(self):
        controls = (
            Control("2.16.840.1.113730.3.4.3", True, b"\x01\x02"),
            Control("1.2.3", False, b""),
        )
        msg = LdapMessage(8, UnbindRequest(), controls)
        assert roundtrip(msg) == msg

    def test_unicode_values(self):
        e = Entry("cn=naïve", cn="naïve", note="héllo wörld")
        msg = LdapMessage(2, SearchResultEntry.from_entry(e))
        assert roundtrip(msg).op.to_entry() == e


class TestFilterCodec:
    @pytest.mark.parametrize(
        "text",
        [
            "(objectclass=computer)",
            "(cn=*)",
            "(load5>=2.0)",
            "(load5<=2.0)",
            "(system~=linux)",
            "(system=*linux*)",
            "(system=a*b*c)",
            "(system=initial*)",
            "(system=*final)",
            "(&(a=1)(b=2))",
            "(|(a=1)(!(b=2)))",
            "(&(objectclass=computer)(|(system=*linux*)(system=*irix*))(!(load5>=4)))",
        ],
    )
    def test_roundtrip(self, text):
        f = parse_filter(text)
        r = TlvReader(encode_filter(f))
        assert decode_filter(r) == f
        assert r.at_end()

    def test_empty_and_rejected(self):
        import repro.ldap.ber as ber
        from repro.ldap.ber import Tag

        blob = ber.encode_tlv(Tag.context(0, True), b"")
        with pytest.raises(ProtocolError, match="empty"):
            decode_filter(TlvReader(blob))


class TestErrors:
    def test_trailing_garbage(self):
        data = encode_message(LdapMessage(1, UnbindRequest())) + b"\x00"
        with pytest.raises(ProtocolError, match="trailing"):
            decode_message(data)

    def test_not_a_sequence(self):
        with pytest.raises(ProtocolError):
            decode_message(b"\x04\x01x")

    def test_truncated(self):
        data = encode_message(LdapMessage(1, BindRequest()))
        with pytest.raises(ProtocolError):
            decode_message(data[:5])

    def test_unknown_app_tag(self):
        import repro.ldap.ber as ber
        from repro.ldap.ber import Tag

        body = ber.encode_integer(1) + ber.encode_tlv(Tag.application(30), b"")
        with pytest.raises(ProtocolError, match="unsupported protocol op"):
            decode_message(ber.encode_sequence(body))

    def test_result_code_names(self):
        assert ResultCode.name(0) == "success"
        assert ResultCode.name(32) == "noSuchObject"
        assert ResultCode.name(999) == "code999"

    def test_ldap_result_ok(self):
        assert LdapResult().ok
        assert not LdapResult(ResultCode.OTHER).ok
        assert "other" in LdapResult(ResultCode.OTHER, message="boom").describe()


_names = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=30
)
_values = st.tuples(
    st.text(alphabet="abcdefghij", min_size=1, max_size=8),
    st.tuples(st.text(max_size=10), st.text(max_size=10)),
)


class TestProtocolProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1), _names)
    def test_bind_roundtrip(self, msg_id, name):
        msg = LdapMessage(msg_id, BindRequest(3, name, "simple", b"pw"))
        assert roundtrip(msg) == msg

    @given(_names, st.lists(_values, max_size=6))
    def test_add_roundtrip(self, dn, attrs):
        op = AddRequest(dn, tuple((a, vs) for a, vs in attrs))
        msg = LdapMessage(1, op)
        assert roundtrip(msg) == msg

    @given(st.binary(max_size=200))
    def test_decoder_never_crashes(self, blob):
        """Arbitrary bytes either decode or raise ProtocolError."""
        try:
            decode_message(blob)
        except ProtocolError:
            pass
