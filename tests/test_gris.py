"""Tests for the GRIS framework: providers, caching, dispatch, NWS."""

import random

import pytest

from repro.gris import (
    DynamicHostProvider,
    FunctionProvider,
    GrisBackend,
    HostConfig,
    NetworkPairsProvider,
    ProviderCache,
    ProviderError,
    QueueProvider,
    QueueState,
    ScriptProvider,
    SeriesStore,
    SimulatedLoadSensor,
    StaticHostProvider,
    StorageProvider,
    pair_series,
)
from repro.ldap.backend import ChangeType, RequestContext
from repro.ldap.dit import Scope
from repro.ldap.dn import DN
from repro.ldap.entry import Entry
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import ResultCode, SearchRequest
from repro.net.sim import Simulator

CTX = RequestContext()


def req(base="o=O1", scope=Scope.SUBTREE, filt="(objectclass=*)"):
    return SearchRequest(base=base, scope=scope, filter=parse_filter(filt))


class TestProviders:
    def test_static_host_provider(self):
        p = StaticHostProvider(HostConfig("hostX", cpu_count=8, memory_mb=2048))
        entries = p.provide()
        assert len(entries) == 1
        assert entries[0].first("cpucount") == "8"
        assert entries[0].first("memorysize") == "2048 MB"
        assert p.invocations == 1

    def test_dynamic_host_provider(self):
        sensor = SimulatedLoadSensor(random.Random(0), mean=2.0)
        p = DynamicHostProvider("hostX", sensor)
        e = p.provide()[0]
        assert e.is_a("loadaverage")
        assert float(e.first("load1")) >= 0.0
        assert e.dn == DN.parse("perf=loadavg, hn=hostX")

    def test_simulated_load_reverts_to_mean(self):
        sensor = SimulatedLoadSensor(random.Random(1), mean=4.0, initial=0.0)
        values = [sensor()[0] for _ in range(300)]
        assert abs(sum(values[200:]) / 100 - 4.0) < 1.0

    def test_storage_provider(self):
        p = StorageProvider(
            "hostX", "scratch", "/disks/scratch1", lambda: (33515 * 1024**2, 66000 * 1024**2)
        )
        e = p.provide()[0]
        assert e.first("free") == "33515 MB"
        assert e.is_a("filesystem")

    def test_queue_provider_reflects_state(self):
        state = QueueState(jobs=3)
        p = QueueProvider("hostX", state=state)
        assert p.provide()[0].first("jobcount") == "3"
        state.jobs = 9
        assert p.provide()[0].first("jobcount") == "9"

    def test_script_provider_parses_ldif(self):
        script = lambda: "dn: hn=hostX\nobjectclass: computer\nhn: hostX\n"
        p = ScriptProvider("script1", script, cost=0.05)
        entries = p.provide()
        assert entries[0].first("hn") == "hostX"
        assert p.total_cost == pytest.approx(0.05)

    def test_script_provider_bad_ldif(self):
        p = ScriptProvider("bad", lambda: "garbage without dn\n")
        with pytest.raises(ProviderError):
            p.provide()

    def test_function_provider_failure_wrapped(self):
        def boom():
            raise RuntimeError("sensor offline")

        p = FunctionProvider("boom", boom)
        with pytest.raises(ProviderError, match="sensor offline"):
            p.provide()

    def test_provider_returns_copies(self):
        shared = Entry("hn=x", objectclass="computer", hn="x")
        p = FunctionProvider("p", lambda: [shared])
        out = p.provide()[0]
        out.put("hn", "tampered")
        assert shared.first("hn") == "x"


class TestProviderCache:
    def test_hit_within_ttl(self):
        sim = Simulator()
        cache = ProviderCache()
        p = FunctionProvider("p", lambda: [Entry("cn=x", cn="x")], cache_ttl=30.0)
        cache.get(p, now=0.0)
        cache.get(p, now=10.0)
        assert p.invocations == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_miss_after_ttl(self):
        cache = ProviderCache()
        p = FunctionProvider("p", lambda: [Entry("cn=x", cn="x")], cache_ttl=30.0)
        cache.get(p, now=0.0)
        cache.get(p, now=31.0)
        assert p.invocations == 2

    def test_zero_ttl_always_refreshes(self):
        cache = ProviderCache()
        p = FunctionProvider("p", lambda: [Entry("cn=x", cn="x")], cache_ttl=0.0)
        cache.get(p, now=0.0)
        cache.get(p, now=0.0)
        assert p.invocations == 2

    def test_entries_stamped_with_production_time(self):
        cache = ProviderCache()
        p = FunctionProvider("p", lambda: [Entry("cn=x", cn="x")], cache_ttl=30.0)
        entries, produced = cache.get(p, now=5.0)
        assert produced == 5.0
        assert entries[0].timestamp() == 5.0
        assert entries[0].valid_to() == 35.0
        # served from cache at t=20: stamp still says produced at 5
        entries2, _ = cache.get(p, now=20.0)
        assert entries2[0].timestamp() == 5.0

    def test_stale_served_on_failure(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("down")
            return [Entry("cn=x", cn="x")]

        cache = ProviderCache()
        p = FunctionProvider("p", flaky, cache_ttl=10.0)
        cache.get(p, now=0.0)
        entries, produced = cache.get(p, now=50.0)  # expired + failing
        assert produced == 0.0
        assert cache.stats.stale_served == 1

    def test_failure_without_cache_raises(self):
        cache = ProviderCache()
        p = FunctionProvider("p", lambda: 1 / 0, cache_ttl=10.0)
        with pytest.raises(ProviderError):
            cache.get(p, now=0.0)

    def test_invalidate(self):
        cache = ProviderCache()
        p = FunctionProvider("p", lambda: [Entry("cn=x", cn="x")], cache_ttl=100.0)
        cache.get(p, now=0.0)
        cache.invalidate("p")
        cache.get(p, now=1.0)
        assert p.invocations == 2

    def test_age(self):
        cache = ProviderCache()
        p = FunctionProvider("p", lambda: [Entry("cn=x", cn="x")], cache_ttl=100.0)
        assert cache.age("p", now=0.0) is None
        cache.get(p, now=2.0)
        assert cache.age("p", now=10.0) == 8.0


def make_gris(sim=None):
    sim = sim or Simulator()
    gris = GrisBackend("o=O1", clock=sim)
    gris.set_suffix_entry(Entry("o=O1", objectclass="organization", o="O1"))
    gris.add_provider(StaticHostProvider(HostConfig("hostX", cpu_count=4)))
    sensor = SimulatedLoadSensor(random.Random(0), mean=1.0)
    gris.add_provider(DynamicHostProvider("hostX", sensor, cache_ttl=10.0))
    gris.add_provider(
        StorageProvider("hostX", "scratch", "/scratch", lambda: (10 * 1024**3, 20 * 1024**3))
    )
    return sim, gris


class TestGrisBackend:
    def test_merged_subtree_search(self):
        _, gris = make_gris()
        out = gris.search(req(), CTX)
        dns = {str(e.dn) for e in out.entries}
        assert "o=O1" in dns
        assert "hn=hostX, o=O1" in dns
        assert "perf=loadavg, hn=hostX, o=O1" in dns
        assert "store=scratch, hn=hostX, o=O1" in dns

    def test_base_search(self):
        _, gris = make_gris()
        out = gris.search(req(base="hn=hostX, o=O1", scope=Scope.BASE), CTX)
        assert len(out.entries) == 1

    def test_base_search_missing(self):
        _, gris = make_gris()
        out = gris.search(req(base="hn=ghost, o=O1", scope=Scope.BASE), CTX)
        assert out.result.code == ResultCode.NO_SUCH_OBJECT

    def test_onelevel(self):
        _, gris = make_gris()
        out = gris.search(req(base="hn=hostX, o=O1", scope=Scope.ONELEVEL), CTX)
        dns = {str(e.dn) for e in out.entries}
        assert dns == {"perf=loadavg, hn=hostX, o=O1", "store=scratch, hn=hostX, o=O1"}

    def test_disjoint_base_rejected(self):
        _, gris = make_gris()
        out = gris.search(req(base="o=SomewhereElse"), CTX)
        assert out.result.code == ResultCode.NO_SUCH_OBJECT

    def test_search_from_root_includes_suffix(self):
        _, gris = make_gris()
        out = gris.search(req(base=""), CTX)
        assert any(str(e.dn) == "o=O1" for e in out.entries)

    def test_filter_applied(self):
        _, gris = make_gris()
        out = gris.search(req(filt="(objectclass=filesystem)"), CTX)
        assert len(out.entries) == 1

    def test_namespace_pruning(self):
        """Providers whose namespace is outside the scope are not invoked."""
        sim, gris = make_gris()
        extra = FunctionProvider(
            "other-host",
            lambda: [Entry("hn=other", objectclass="computer", hn="other")],
            namespace="hn=other",
        )
        gris.add_provider(extra)
        gris.search(req(base="hn=hostX, o=O1"), CTX)
        assert extra.invocations == 0
        gris.search(req(base="o=O1"), CTX)
        assert extra.invocations == 1

    def test_caching_respects_provider_ttl(self):
        sim, gris = make_gris()
        dyn = gris._providers["dynamic-host-hostX"]
        gris.search(req(), CTX)
        gris.search(req(), CTX)
        assert dyn.invocations == 1  # TTL 10s, same virtual instant
        sim.run_until(11.0)
        gris.search(req(), CTX)
        assert dyn.invocations == 2

    def test_provider_failure_skipped(self):
        sim, gris = make_gris()
        gris.add_provider(FunctionProvider("broken", lambda: 1 / 0))
        out = gris.search(req(), CTX)
        assert out.result.ok
        assert len(out.entries) >= 4
        assert gris.provider_errors == 1

    def test_duplicate_provider_rejected(self):
        _, gris = make_gris()
        with pytest.raises(ValueError):
            gris.add_provider(FunctionProvider("broken", lambda: []))
            gris.add_provider(FunctionProvider("broken", lambda: []))

    def test_remove_provider(self):
        _, gris = make_gris()
        gris.remove_provider("storage-hostX-scratch")
        out = gris.search(req(filt="(objectclass=filesystem)"), CTX)
        assert len(out.entries) == 0

    def test_entries_carry_currency_metadata(self):
        _, gris = make_gris()
        out = gris.search(req(filt="(objectclass=loadaverage)"), CTX)
        e = out.entries[0]
        assert e.timestamp() is not None
        assert e.valid_to() is not None

    def test_writes_refused(self):
        from repro.ldap.protocol import AddRequest

        _, gris = make_gris()
        result = gris.add(AddRequest(dn="cn=x"), CTX)
        assert result.code == ResultCode.UNWILLING_TO_PERFORM


class TestGrisSubscriptions:
    def test_polling_detects_modify(self):
        sim, gris = make_gris()
        changes = []
        gris.subscribe(
            req(filt="(objectclass=loadaverage)"),
            CTX,
            lambda e, c: changes.append((c, e.first("load1"))),
        )
        sim.run_until(60.0)  # several poll+TTL cycles; load values drift
        assert changes
        assert all(c == ChangeType.MODIFY for c, _ in changes)

    def test_polling_detects_add_and_delete(self):
        sim, gris = make_gris()
        changes = []
        gris.subscribe(req(), CTX, lambda e, c: changes.append((c, str(e.dn))))
        new = FunctionProvider(
            "late", lambda: [Entry("hn=late", objectclass="computer", hn="late")]
        )
        sim.run_until(2.0)
        gris.add_provider(new)
        sim.run_until(12.0)
        assert (ChangeType.ADD, "hn=late, o=O1") in changes
        gris.remove_provider("late")
        sim.run_until(22.0)
        assert (ChangeType.DELETE, "hn=late, o=O1") in changes

    def test_cancel(self):
        sim, gris = make_gris()
        changes = []
        sub = gris.subscribe(req(), CTX, lambda e, c: changes.append(c))
        sub.cancel()
        assert gris.subscription_count() == 0
        sim.run_until(60.0)
        assert changes == []


class TestSeriesStoreAndForecasters:
    def test_constant_series_forecast(self):
        store = SeriesStore()
        for _ in range(20):
            store.observe("s", 5.0)
        f = store.forecast("s")
        assert f.value == pytest.approx(5.0)

    def test_adaptive_picks_good_forecaster_on_trend(self):
        # On a pure linear trend AR(1) should beat running mean.
        from repro.gris import AdaptiveForecaster

        bank = AdaptiveForecaster()
        for i in range(100):
            bank.update(float(i))
        best = bank.best()
        pred = best.predict()
        assert pred > 95.0  # mean would predict ~50

    def test_adaptive_on_noisy_constant(self):
        from repro.gris import AdaptiveForecaster

        rng = random.Random(0)
        bank = AdaptiveForecaster()
        for _ in range(300):
            bank.update(10.0 + rng.gauss(0, 1.0))
        forecast = bank.forecast()
        assert abs(forecast.value - 10.0) < 1.0
        # a smoothing forecaster should beat last-value here
        assert forecast.method != "last"

    def test_probe_on_demand(self):
        probes = []

        def probe(series):
            probes.append(series)
            return 42.0

        store = SeriesStore(probe=probe, min_samples=3)
        f = store.forecast("bw:a->b")
        assert f.value == pytest.approx(42.0)
        assert store.probes_run == 3

    def test_no_probe_no_series(self):
        store = SeriesStore()
        assert store.forecast("unknown") is None

    def test_forecaster_warmup(self):
        from repro.gris import Ar1, Ewma, SlidingMedian

        for f in (Ar1(), Ewma(0.3), SlidingMedian(5)):
            assert f.predict() is None
            f.update(1.0)
            assert f.predict() == pytest.approx(1.0)

    def test_median_robust_to_outlier(self):
        from repro.gris import SlidingMedian

        m = SlidingMedian(5)
        for v in [1.0, 1.0, 100.0, 1.0, 1.0]:
            m.update(v)
        assert m.predict() == pytest.approx(1.0)

    def test_bad_params(self):
        from repro.gris import Ewma, SlidingMean

        with pytest.raises(ValueError):
            SlidingMean(0)
        with pytest.raises(ValueError):
            Ewma(0.0)


class TestNetworkPairsProvider:
    def make(self, strict=False):
        rng = random.Random(0)
        store = SeriesStore(probe=lambda s: 100.0 + rng.gauss(0, 5), min_samples=3)
        lat = SeriesStore(probe=lambda s: 0.04, min_samples=1)
        return NetworkPairsProvider(store, lat, strict=strict)

    def test_lazy_generation_via_filter(self):
        p = self.make()
        out = p.search(
            SearchRequest(
                base="nw=links, o=O1",
                scope=Scope.SUBTREE,
                filter=parse_filter("(&(src=ucla.edu)(dst=anl.gov))"),
            ),
            suffix=DN.parse("o=O1"),
        )
        assert len(out) == 1
        e = out[0]
        assert e.first("src") == "ucla.edu"
        assert 80 < float(e.first("bandwidth")) < 120
        assert e.has("latency")
        assert str(e.dn).startswith("link=ucla.edu:anl.gov")

    def test_lazy_generation_via_base_dn(self):
        p = self.make()
        out = p.search(
            SearchRequest(base="link=a:b, nw=links, o=O1", scope=Scope.BASE),
            suffix=DN.parse("o=O1"),
        )
        assert len(out) == 1

    def test_wide_search_partial_results(self):
        p = self.make()
        # materialize two pairs first
        for pair in ("(&(src=a)(dst=b))", "(&(src=c)(dst=d))"):
            p.search(
                SearchRequest(
                    base="nw=links, o=O1",
                    scope=Scope.SUBTREE,
                    filter=parse_filter(pair),
                ),
                suffix=DN.parse("o=O1"),
            )
        wide = p.search(
            SearchRequest(base="nw=links, o=O1", scope=Scope.SUBTREE),
            suffix=DN.parse("o=O1"),
        )
        assert len(wide) == 2  # only materialized links; namespace is infinite

    def test_strict_mode_returns_nothing_for_wide(self):
        p = self.make(strict=True)
        out = p.search(
            SearchRequest(base="nw=links, o=O1", scope=Scope.SUBTREE),
            suffix=DN.parse("o=O1"),
        )
        assert out == []

    def test_integration_with_gris(self):
        sim = Simulator()
        gris = GrisBackend("o=O1", clock=sim)
        gris.add_provider(self.make())
        out = gris.search(
            SearchRequest(
                base="nw=links, o=O1",
                scope=Scope.SUBTREE,
                filter=parse_filter("(&(src=x)(dst=y))"),
            ),
            CTX,
        )
        assert len(out.entries) == 1
        assert str(out.entries[0].dn) == "link=x:y, nw=links, o=O1"

    def test_series_name_helper(self):
        assert pair_series("a", "b", "bw") == "bw:a->b"
