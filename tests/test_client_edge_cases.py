"""Client robustness: failures, abandons, protocol garbage, deep trees."""

import pytest

from repro.ldap.backend import DitBackend
from repro.ldap.client import LdapClient, LdapError
from repro.ldap.dit import DIT, Scope
from repro.ldap.entry import Entry
from repro.ldap.protocol import ResultCode, SearchRequest
from repro.ldap.server import LdapServer
from repro.net.sim import Simulator
from repro.net.simnet import SimNetwork
from repro.testbed import GridTestbed


def sim_stack(seed=0):
    sim = Simulator(seed=seed)
    net = SimNetwork(sim)
    server_node = net.add_node("server")
    client_node = net.add_node("client")
    dit = DIT()
    dit.add(Entry("o=G", objectclass="organization", o="G"))
    backend = DitBackend(dit)
    server = LdapServer(backend, clock=sim)
    server_node.listen(389, server.handle_connection)
    client = LdapClient(client_node.connect(("server", 389)), driver=sim.step)
    return sim, net, client, server, backend


class TestClientFailures:
    def test_pending_ops_fail_when_connection_dies(self):
        sim, net, client, server, _ = sim_stack()
        results = []
        client.search_async(
            SearchRequest(base="o=G", scope=Scope.SUBTREE),
            lambda r, _e: results.append(r),
        )
        net.partition(["client"], ["server"])
        sim.run()
        # the next send attempt (or close) surfaces the failure
        with pytest.raises(LdapError):
            client.search("o=G")
        assert client.closed
        assert results and not results[0].result.ok

    def test_server_crash_fails_blocking_call(self):
        sim, net, client, server, _ = sim_stack()
        net.node("server").crash()
        with pytest.raises(LdapError):
            client.search("o=G")

    def test_garbage_from_server_closes_connection(self):
        sim = Simulator()
        net = SimNetwork(sim)
        evil = net.add_node("evil")
        user = net.add_node("user")

        def evil_handler(conn):
            conn.set_receiver(lambda m: conn.send(b"\xff\xfegarbage"))

        evil.listen(389, evil_handler)
        client = LdapClient(user.connect(("evil", 389)), driver=sim.step)
        with pytest.raises(LdapError):
            client.search("o=G")
        assert client.closed

    def test_unsolicited_message_ignored(self):
        sim = Simulator()
        net = SimNetwork(sim)
        weird = net.add_node("weird")
        user = net.add_node("user")
        from repro.ldap.protocol import (
            LdapMessage,
            LdapResult,
            SearchResultDone,
            SearchResultEntry,
            encode_message,
        )

        def handler(conn):
            def on_message(m):
                # reply to msg id 999 (never issued), then the real one
                conn.send(
                    encode_message(
                        LdapMessage(999, SearchResultEntry(dn="cn=ghost"))
                    )
                )
                conn.send(
                    encode_message(LdapMessage(1, SearchResultDone(LdapResult())))
                )

            conn.set_receiver(on_message)

        weird.listen(389, handler)
        client = LdapClient(user.connect(("weird", 389)), driver=sim.step)
        out = client.search("o=G", check=False)
        assert out.result.ok
        assert out.entries == []  # ghost reply discarded

    def test_whoami_failure_path(self):
        sim, net, client, server, _ = sim_stack()
        # unsupported extended op returns protocolError
        result = []
        client.extended_async("9.9.9.9", b"", lambda r, _e: result.append(r))
        sim.run()
        assert result[0].result.code == ResultCode.PROTOCOL_ERROR

    def test_unbind_twice_is_safe(self):
        sim, net, client, server, _ = sim_stack()
        client.unbind()
        client.unbind()
        assert client.closed


class TestAbandon:
    def test_abandon_unknown_id_is_noop(self):
        sim, net, client, server, backend = sim_stack()
        from repro.ldap.protocol import AbandonRequest, LdapMessage, encode_message

        client.conn.send(encode_message(LdapMessage(0, AbandonRequest(12345))))
        sim.run()
        assert client.search("o=G").result.ok  # server still healthy

    def test_subscription_cleaned_on_unbind(self):
        sim, net, client, server, backend = sim_stack()
        client.subscribe(
            SearchRequest(base="o=G", scope=Scope.SUBTREE), lambda e, c: None
        )
        sim.run()
        assert backend.subscription_count() == 1
        client.unbind()
        sim.run()
        assert backend.subscription_count() == 0

    def test_subscription_cleaned_on_connection_loss(self):
        sim, net, client, server, backend = sim_stack()
        client.subscribe(
            SearchRequest(base="o=G", scope=Scope.SUBTREE), lambda e, c: None
        )
        sim.run()
        assert backend.subscription_count() == 1
        client.conn.close()
        sim.run()
        assert backend.subscription_count() == 0


class TestDeepHierarchy:
    def test_three_level_giis_tree(self):
        """GIIS -> GIIS -> GIIS -> GRIS chaining, plus scoping at depth."""
        tb = GridTestbed(seed=44)
        root = tb.add_giis("root", "o=Grid", vo_name="Root")
        region = tb.add_giis("region", "o=EU, o=Grid", vo_name="EU")
        site = tb.add_giis("site", "o=CERN, o=EU, o=Grid", vo_name="CERN")
        tb.register(region, root, name="eu")
        tb.register(site, region, name="cern")
        gris = tb.standard_gris("wn1", "hn=wn1, o=CERN, o=EU, o=Grid")
        tb.register(gris, site, name="wn1")
        # a second branch to prove scoping prunes it
        us = tb.add_giis("us-region", "o=US, o=Grid", vo_name="US")
        tb.register(us, root, name="us")
        gris2 = tb.standard_gris("wn2", "hn=wn2, o=US, o=Grid")
        tb.register(gris2, us, name="wn2")
        tb.run(1.0)

        client = tb.client("user", root)
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert sorted(e.first("hn") for e in out) == ["wn1", "wn2"]

        us_before = us.backend.stats_chained
        out = client.search(
            "o=CERN, o=EU, o=Grid", filter="(objectclass=computer)"
        )
        assert [e.first("hn") for e in out] == ["wn1"]
        assert us.backend.stats_chained == us_before  # US branch untouched

    def test_point_query_resolves_through_three_levels(self):
        tb = GridTestbed(seed=44)
        root = tb.add_giis("root", "o=Grid")
        mid = tb.add_giis("mid", "o=A, o=Grid")
        tb.register(mid, root)
        gris = tb.standard_gris("leaf", "hn=leaf, o=A, o=Grid")
        tb.register(gris, mid)
        tb.run(1.0)
        out = tb.client("u", root).search("o=Grid", filter="(hn=leaf)")
        assert len(out) == 1
        assert str(out.entries[0].dn) == "hn=leaf, o=A, o=Grid"
