"""Durable DIT storage: the ChangeOp choke point and the three engines.

Layers:

* unit tests for :class:`ChangeOp` (record round-trip) and the
  :func:`make_storage` factory's validation errors;
* engine equivalence: the same mutation sequence through memory-, WAL-
  and sqlite-backed DITs yields byte-identical trees and searches,
  before and after a restart;
* crash-tail semantics: a WAL truncated or corrupted at any byte
  recovers exactly the prefix of fully-framed ops (hypothesis property
  with an independent frame-offset oracle), planned searches included;
* snapshot/compaction lifecycle, including the auto-snapshot threshold
  and replay of a stale log over its own snapshot (idempotence);
* GIIS/GRIS warm restart: registrations and the materialized view
  survive a process death, over both real transports;
* the ``clear()`` index-gauge regression (per-attribute
  ``ldap.index.size`` must read zero after a wholesale clear).
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.giis.core import GiisBackend
from repro.grip.messages import GrrpMessage
from repro.ldap.dit import DIT, EntryExists, Scope
from repro.ldap.dn import DN
from repro.ldap.entry import Entry
from repro.ldap.filter import parse as parse_filter
from repro.ldap.storage import (
    BACKENDS,
    ChangeKind,
    ChangeOp,
    MemoryEngine,
    SqliteEngine,
    StorageError,
    WalEngine,
    entry_from_record,
    entry_to_record,
    make_storage,
    parse_storage_spec,
    read_wal,
)
from repro.ldap.storage.wal import WAL_FILE, _encode_record
from repro.net.clock import WallClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _host(n, cpu="x86"):
    return Entry(
        f"hn=node{n}, o=Site, o=Grid",
        objectclass=["computer"],
        hn=[f"node{n}"],
        cpu=[cpu],
    )


def _engines(tmp_path, tag=""):
    return {
        "memory": MemoryEngine(),
        "wal": WalEngine(tmp_path / f"wal{tag}"),
        "sqlite": SqliteEngine(tmp_path / f"db{tag}.sqlite"),
    }


class TestChangeOp:
    def test_put_roundtrip_preserves_attr_case(self):
        entry = Entry("hn=a, o=G", attrs={"ObjectClass": ["computer"], "Hn": "a"})
        op = ChangeOp.put(entry)
        back = ChangeOp.from_record(json.loads(json.dumps(op.to_record())))
        assert back.kind == ChangeKind.PUT
        assert back.entry == entry
        assert dict(back.entry.items()) == dict(entry.items())

    def test_delete_and_clear_roundtrip(self):
        dn = DN.parse("hn=a, o=G")
        assert ChangeOp.from_record(ChangeOp.delete(dn).to_record()).dn == dn
        assert ChangeOp.from_record(ChangeOp.clear().to_record()).kind == ChangeKind.CLEAR

    def test_unknown_kind_rejected(self):
        with pytest.raises(StorageError):
            ChangeOp.from_record({"op": "compact"})

    def test_entry_record_roundtrip(self):
        entry = _host(1)
        assert entry_from_record(entry_to_record(entry)) == entry


class TestFactory:
    def test_backend_names(self, tmp_path):
        for backend in BACKENDS:
            engine = make_storage(backend, tmp_path / backend)
            assert engine.backend_name == backend
            engine.close()

    def test_unknown_backend(self):
        with pytest.raises(StorageError, match="unknown storage backend"):
            make_storage("bdb", "/tmp/x")

    def test_durable_backend_requires_path(self):
        with pytest.raises(StorageError, match="requires a data"):
            make_storage("wal")

    def test_unknown_fsync_policy(self, tmp_path):
        spec = parse_storage_spec({"backend": "wal", "path": str(tmp_path)})
        assert spec.fsync == "batch"
        with pytest.raises(StorageError, match="unknown fsync policy"):
            parse_storage_spec({"backend": "wal", "fsync": "sometimes"})

    def test_unknown_option_rejected(self):
        with pytest.raises(StorageError, match="unknown storage option"):
            parse_storage_spec({"backend": "wal", "dir": "/x"})

    def test_negative_snapshot_every_rejected(self):
        with pytest.raises(StorageError, match="snapshot_every"):
            parse_storage_spec({"snapshot_every": -1})

    def test_config_spec_defers_path_check_to_factory(self):
        # A config may say {"backend": "wal"} and rely on --data-dir.
        spec = parse_storage_spec({"backend": "wal"})
        with pytest.raises(StorageError, match="requires a data"):
            make_storage(spec)

    def test_memory_ignores_path(self):
        assert make_storage("memory").backend_name == "memory"


def _mutate(dit):
    """A fixed mutation sequence exercising every DIT write op."""
    dit.add(Entry("o=Grid", objectclass="organization", o="Grid"))
    dit.add(Entry("o=Site, o=Grid", objectclass="organization", o="Site"))
    for n in range(6):
        dit.add(_host(n))
    dit.replace(_host(0, cpu="sparc"))
    dit.modify("hn=node1, o=Site, o=Grid", lambda e: e.put("cpu", "mips"))
    dit.delete("hn=node5, o=Site, o=Grid")
    with pytest.raises(EntryExists):
        dit.add(_host(2))
    dit.load([_host(7), _host(8)])
    dit.delete("hn=node8, o=Site, o=Grid")


def _shape(dit):
    return [(str(e.dn), sorted((a, list(v)) for a, v in e.items())) for e in dit.dump()]


class TestEngineEquivalence:
    def test_same_sequence_same_tree(self, tmp_path):
        shapes = {}
        for name, engine in _engines(tmp_path).items():
            dit = DIT(index_attrs=("cpu",), storage=engine)
            _mutate(dit)
            out = dit.search("o=Grid", Scope.SUBTREE, parse_filter("(cpu=x86)"))
            assert dit.stats_planned == 1
            shapes[name] = (_shape(dit), [str(e.dn) for e in out])
            engine.close()
        assert shapes["wal"] == shapes["memory"]
        assert shapes["sqlite"] == shapes["memory"]

    @pytest.mark.parametrize("backend", ["wal", "sqlite"])
    def test_restart_is_byte_identical(self, tmp_path, backend):
        baseline = DIT(index_attrs=("cpu",))
        _mutate(baseline)

        engine = _engines(tmp_path)[backend]
        _mutate(DIT(index_attrs=("cpu",), storage=engine))
        engine.close()

        reopened = _engines(tmp_path)[backend]
        dit = DIT(index_attrs=("cpu",), storage=reopened)
        assert _shape(dit) == _shape(baseline)
        planned = dit.search("o=Grid", Scope.SUBTREE, parse_filter("(cpu=mips)"))
        expect = baseline.search("o=Grid", Scope.SUBTREE, parse_filter("(cpu=mips)"))
        assert [str(e.dn) for e in planned] == [str(e.dn) for e in expect]
        assert dit.stats_planned == 1
        reopened.close()

    def test_clear_persists(self, tmp_path):
        engine = WalEngine(tmp_path / "w")
        dit = DIT(storage=engine)
        dit.add(Entry("o=Grid", objectclass="organization", o="Grid"))
        dit.clear()
        dit.add(Entry("o=New", objectclass="organization", o="New"))
        engine.close()
        dit2 = DIT(storage=WalEngine(tmp_path / "w"))
        assert [str(dn) for dn in dit2.dns()] == ["o=New"]
        dit2.storage.close()


class TestWalLifecycle:
    def test_snapshot_compacts_the_log(self, tmp_path):
        engine = WalEngine(tmp_path / "w", fsync="never")
        dit = DIT(storage=engine)
        _mutate(dit)
        assert engine.wal_size > 0
        written = engine.snapshot()
        assert written == len(dit)
        assert engine.wal_size == 0
        assert engine.ops_since_snapshot == 0
        engine.close()
        dit2 = DIT(storage=WalEngine(tmp_path / "w"))
        assert dit2.replayed_ops == 0  # state came from the snapshot alone
        assert _shape(dit2) == _shape(dit)
        dit2.storage.close()

    def test_auto_snapshot_threshold(self, tmp_path):
        engine = WalEngine(tmp_path / "w", fsync="never", snapshot_every=5)
        dit = DIT(storage=engine)
        for n in range(11):
            dit.add(_host(n))
        # Two auto-snapshots fired; at most the tail ops remain logged.
        assert engine.ops_since_snapshot < 5
        engine.close()

    def test_stale_log_over_snapshot_is_idempotent(self, tmp_path):
        """A crash between snapshot-rename and WAL-truncate must be safe."""
        engine = WalEngine(tmp_path / "w", fsync="never")
        dit = DIT(storage=engine)
        _mutate(dit)
        shape = _shape(dit)
        wal_bytes = (tmp_path / "w" / WAL_FILE).read_bytes()
        engine.snapshot()
        engine.close()
        # Resurrect the pre-snapshot log: replay now applies every old op
        # on top of the snapshot that already contains their effects.
        (tmp_path / "w" / WAL_FILE).write_bytes(wal_bytes)
        dit2 = DIT(storage=WalEngine(tmp_path / "w"))
        assert dit2.replayed_ops > 0
        assert _shape(dit2) == shape
        dit2.storage.close()

    def test_corrupt_frame_discards_the_tail(self, tmp_path):
        engine = WalEngine(tmp_path / "w", fsync="never")
        for n in range(4):
            engine.apply(ChangeOp.put(_host(n)))
        engine.close()
        path = tmp_path / "w" / WAL_FILE
        raw = bytearray(path.read_bytes())
        sizes = [len(_encode_record(ChangeOp.put(_host(n)))) for n in range(4)]
        # Flip one payload byte inside the third record.
        raw[sum(sizes[:2]) + 12] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert [op.dn for op in read_wal(path)] == [_host(0).dn, _host(1).dn]
        recovered = WalEngine(tmp_path / "w")
        assert recovered.replay() == 2  # the corrupt frame and everything after it is gone
        assert set(recovered.entries) == {_host(0).dn, _host(1).dn}
        recovered.close()

    def test_replay_is_idempotent(self, tmp_path):
        engine = WalEngine(tmp_path / "w", fsync="never")
        engine.apply(ChangeOp.put(_host(1)))
        engine.close()
        reopened = WalEngine(tmp_path / "w")
        assert reopened.replay() == 1
        assert reopened.replay() == 0
        reopened.close()

    def test_metrics_and_spans(self, tmp_path):
        metrics = MetricsRegistry()
        spans = []
        tracer = Tracer(WallClock().now)
        tracer.add_sink(lambda span: spans.append(span.name))
        engine = WalEngine(
            tmp_path / "w", fsync="never", metrics=metrics, tracer=tracer, name="t"
        )
        engine.apply(ChangeOp.put(_host(1)))
        engine.snapshot()
        engine.close()
        labels = {"store": "t"}
        assert metrics.get("storage.wal.appends", labels).value == 1
        assert metrics.get("storage.wal.bytes", labels).value > 0
        assert metrics.get("storage.snapshot.seconds", labels).snapshot()["count"] == 1
        reopened = WalEngine(
            tmp_path / "w", metrics=metrics, tracer=tracer, name="t"
        )
        reopened.replay()
        reopened.close()
        assert metrics.get("storage.replay.ops", labels).value == 0  # compacted
        assert metrics.get("storage.entries", labels).value == 1.0
        assert "storage.snapshot" in spans and "storage.replay" in spans


# -- the crash property -------------------------------------------------------

_DNS = [
    "o=Grid",
    "o=Site, o=Grid",
    "hn=a, o=Site, o=Grid",
    "hn=b, o=Site, o=Grid",
    "hn=c, o=Other, o=Grid",
]

_op = st.one_of(
    st.tuples(
        st.just("put"),
        st.sampled_from(_DNS),
        st.sampled_from(["x86", "mips", "sparc"]),
    ),
    st.tuples(st.just("delete"), st.sampled_from(_DNS), st.none()),
    st.tuples(st.just("clear"), st.none(), st.none()),
)


def _build_ops(script):
    ops = []
    for kind, dn, cpu in script:
        if kind == "put":
            ops.append(
                ChangeOp.put(Entry(dn, objectclass=["computer"], cpu=[cpu]))
            )
        elif kind == "delete":
            ops.append(ChangeOp.delete(dn))
        else:
            ops.append(ChangeOp.clear())
    return ops


@settings(max_examples=40, deadline=None)
@given(script=st.lists(_op, min_size=1, max_size=12), data=st.data())
def test_crash_at_any_byte_boundary_replays_the_clean_prefix(
    tmp_path_factory, script, data
):
    """Truncating the WAL anywhere recovers exactly the framed prefix.

    The oracle is independent of the recovery scanner: frame offsets are
    recomputed from the encoder, and the expected state is the op prefix
    applied to a plain in-memory engine.  Planned searches over the
    recovered tree must match the expectation too.
    """
    tmp = tmp_path_factory.mktemp("crash")
    ops = _build_ops(script)
    engine = WalEngine(tmp / "w", fsync="never")
    for op in ops:
        engine.apply(op)
    engine.close()

    path = tmp / "w" / WAL_FILE
    raw = path.read_bytes()
    cut = data.draw(st.integers(min_value=0, max_value=len(raw)), label="cut")
    path.write_bytes(raw[:cut])

    # Independent oracle: how many ops fit entirely within `cut` bytes?
    offsets, total = [], 0
    for op in ops:
        total += len(_encode_record(op))
        offsets.append(total)
    survivors = sum(1 for end in offsets if end <= cut)

    expected = MemoryEngine()
    for op in ops[:survivors]:
        expected.apply(op)

    recovered = DIT(index_attrs=("cpu",), storage=WalEngine(tmp / "w"))
    assert recovered.replayed_ops == survivors
    assert {str(dn) for dn in recovered.dns()} == {
        str(dn) for dn in expected.entries
    }
    baseline = DIT(index_attrs=("cpu",), storage=expected)
    for filt in ("(cpu=x86)", "(&(objectclass=computer)(cpu=mips))"):
        got = recovered.search("o=Grid", Scope.SUBTREE, parse_filter(filt))
        want = baseline.search("o=Grid", Scope.SUBTREE, parse_filter(filt))
        assert _shape_of(got) == _shape_of(want)
    assert recovered.stats_planned == 2
    recovered.storage.close()


def _shape_of(entries):
    return [(str(e.dn), sorted((a, list(v)) for a, v in e.items())) for e in entries]


# -- the clear() gauge regression (satellite fix) ------------------------------


class TestClearResetsIndexGauges:
    def test_gauges_read_zero_after_clear(self):
        metrics = MetricsRegistry()
        dit = DIT(index_attrs=("cpu", "hn"), metrics=metrics, name="g")
        for n in range(5):
            dit.add(_host(n))
        for attr in ("cpu", "hn"):
            gauge = metrics.get("ldap.index.size", labels={"dit": "g", "attr": attr})
            assert gauge.value == 5.0
        dit.clear()
        for attr in ("cpu", "hn"):
            gauge = metrics.get("ldap.index.size", labels={"dit": "g", "attr": attr})
            assert gauge.value == 0.0
        # And the index keeps working (stays live, not rebuilt stale).
        dit.add(_host(9))
        assert (
            metrics.get("ldap.index.size", labels={"dit": "g", "attr": "cpu"}).value
            == 1.0
        )


# -- warm restarts ------------------------------------------------------------


def _grrp(now, n="a", ttl=3600.0):
    return GrrpMessage(
        service_url=f"ldap://gris-{n}:2135/o=Site{n.upper()},o=Grid",
        timestamp=now,
        valid_until=now + ttl,
        metadata={"suffix": f"o=Site{n.upper()},o=Grid"},
    )


class TestGiisWarmRestart:
    def test_registrations_survive(self, tmp_path):
        clock = WallClock()
        giis = GiisBackend(
            "o=Grid", clock, storage=WalEngine(tmp_path / "giis", fsync="always")
        )
        giis.apply_grrp(_grrp(clock.now(), "a"), "cn=siteA")
        giis.apply_grrp(_grrp(clock.now(), "b"))
        # No clean shutdown: fsync=always means the WAL already holds both.

        reborn = GiisBackend(
            "o=Grid", clock, storage=WalEngine(tmp_path / "giis", fsync="always")
        )
        assert reborn.replayed_registrations == 2
        urls = {r.service_url for r in reborn.registry.active()}
        assert urls == {r.service_url for r in giis.registry.active()}
        back = reborn.registry.lookup("ldap://gris-a:2135/o=SiteA,o=Grid")
        assert back.source_identity == "cn=siteA"
        giis.shutdown()
        reborn.shutdown()

    def test_expired_on_disk_is_purged(self, tmp_path):
        clock = WallClock()
        giis = GiisBackend(
            "o=Grid", clock, storage=WalEngine(tmp_path / "giis", fsync="always")
        )
        giis.apply_grrp(_grrp(clock.now(), "a"))
        giis.apply_grrp(_grrp(clock.now(), "b", ttl=0.05))
        giis.shutdown()
        time.sleep(0.1)
        reborn = GiisBackend(
            "o=Grid", clock, storage=WalEngine(tmp_path / "giis", fsync="always")
        )
        assert reborn.replayed_registrations == 1
        assert len(reborn.storage.entries) == 1  # the dead one left the disk too
        reborn.shutdown()

    def test_refresh_extends_the_persisted_lifetime(self, tmp_path):
        """A refresh must re-persist: recovery would otherwise resurrect
        the original valid_until and purge a live registrant."""
        clock = WallClock()
        giis = GiisBackend(
            "o=Grid", clock, storage=WalEngine(tmp_path / "giis", fsync="always")
        )
        now = clock.now()
        giis.apply_grrp(_grrp(now, "a", ttl=0.05))
        from dataclasses import replace as dc_replace

        refreshed = dc_replace(
            _grrp(now, "a"), timestamp=now + 0.01, valid_until=now + 3600.0
        )
        giis.apply_grrp(refreshed)
        giis.shutdown()
        time.sleep(0.1)  # the original ttl lapses; the refreshed one has not
        reborn = GiisBackend(
            "o=Grid", clock, storage=WalEngine(tmp_path / "giis", fsync="always")
        )
        assert reborn.replayed_registrations == 1
        reborn.shutdown()

    def test_unregister_clears_the_disk(self, tmp_path):
        from repro.grip.messages import NotificationType
        from dataclasses import replace as dc_replace

        clock = WallClock()
        giis = GiisBackend(
            "o=Grid", clock, storage=WalEngine(tmp_path / "giis", fsync="always")
        )
        msg = _grrp(clock.now(), "a")
        giis.apply_grrp(msg)
        assert len(giis.storage.entries) == 1
        giis.apply_grrp(
            dc_replace(msg, notification_type=NotificationType.UNREGISTER)
        )
        assert len(giis.storage.entries) == 0
        giis.shutdown()


@pytest.mark.parametrize("transport", ["reactor", "threads"])
class TestServerWarmRestartOverTcp:
    def test_giis_mode_serves_prior_registrations(self, tmp_path, transport):
        """start_server in GIIS mode twice over one --data-dir: the second
        instance answers with the registrations accepted by the first."""
        from repro.ldap.client import LdapClient
        from repro.tools.grid_info_server import start_server

        config = tmp_path / "giis.json"
        config.write_text(
            json.dumps(
                {
                    "suffix": "o=Grid",
                    "giis": {},
                    "storage": {"backend": "wal", "fsync": "always"},
                }
            )
        )
        data_dir = str(tmp_path / "data")

        def boot():
            return start_server(
                str(config), port=0, transport=transport, data_dir=data_dir
            )

        endpoint, port, _, server = boot()
        try:
            client = LdapClient(endpoint.connect(("127.0.0.1", port)))
            now = time.time()
            res = client.add(_grrp(now, "a").to_entry("o=Grid"))
            assert res.code == 0
            before = client.search("o=Grid", filter="(objectclass=*)")
            client.unbind()
        finally:
            endpoint.close()
            server.executor.shutdown()
            backend = getattr(server.backend, "inner", server.backend)
            backend.shutdown()

        endpoint, port, _, server = boot()
        try:
            client = LdapClient(endpoint.connect(("127.0.0.1", port)))
            after = client.search("o=Grid", filter="(objectclass=*)")
            assert _shape_of(after.entries) == _shape_of(before.entries)
            assert any("regid=" in str(e.dn) for e in after.entries)
            client.unbind()
        finally:
            endpoint.close()
            server.executor.shutdown()
            backend = getattr(server.backend, "inner", server.backend)
            backend.shutdown()


class TestSigkillAcceptance:
    def test_sigkilled_giis_restarts_warm(self, tmp_path):
        """The issue's acceptance bar, end to end through the CLI: kill -9
        a grid-info-server in GIIS mode and restart it over the same
        --data-dir; it must serve the same registrations."""
        from repro.ldap.client import LdapClient
        from repro.net.tcp import TcpEndpoint

        config = tmp_path / "giis.json"
        config.write_text(
            json.dumps(
                {
                    "suffix": "o=Grid",
                    "giis": {},
                    "storage": {"backend": "wal", "fsync": "always"},
                }
            )
        )
        env = dict(os.environ, PYTHONUNBUFFERED="1")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )

        def launch():
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.tools.grid_info_server",
                    "--config",
                    str(config),
                    "--port",
                    "0",
                    "--data-dir",
                    str(tmp_path / "data"),
                    "--workers",
                    "2",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            deadline = time.time() + 20.0
            while time.time() < deadline:
                line = proc.stdout.readline()
                match = re.search(r"ldap://[^:]+:(\d+)/", line)
                if match:
                    return proc, int(match.group(1))
                if not line and proc.poll() is not None:
                    break
            proc.kill()
            raise AssertionError("server did not report a listen port")

        endpoint = TcpEndpoint()
        proc, port = launch()
        try:
            client = LdapClient(endpoint.connect(("127.0.0.1", port)))
            now = time.time()
            assert client.add(_grrp(now, "a").to_entry("o=Grid")).code == 0
            assert client.add(_grrp(now, "b").to_entry("o=Grid")).code == 0
            before = client.search("o=Grid", filter="(objectclass=*)")
            client.unbind()
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)

        proc, port = launch()
        try:
            client = LdapClient(endpoint.connect(("127.0.0.1", port)))
            after = client.search("o=Grid", filter="(objectclass=*)")
            assert _shape_of(after.entries) == _shape_of(before.entries)
            client.unbind()
        finally:
            proc.terminate()
            proc.wait(timeout=10)
            endpoint.close()
