"""LdapClientPool: warm reuse, bounded growth, health-checked redial."""

import pytest

from repro.ldap.pool import LdapClientPool
from repro.obs.metrics import MetricsRegistry
from repro.testbed.vo import GridTestbed


def build_vo(tb, n_gris=2, **giis_kwargs):
    """One GIIS with *n_gris* registered standard GRIS children."""
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO-A", **giis_kwargs)
    for i in range(n_gris):
        host = f"r{i}"
        gris = tb.standard_gris(host, f"hn={host}, o=Grid", load_mean=0.5 + i)
        tb.register(gris, giis, interval=20.0, ttl=60.0, name=host)
    tb.run(1.0)  # let first registrations land
    return giis


class FakeClient:
    """Pool-facing slice of LdapClient: load, health, release."""

    def __init__(self, remote):
        self.remote = remote
        self.closed = False
        self.pending_count = 0
        self.unbound = 0

    def unbind(self):
        self.unbound += 1
        self.closed = True


class PoolFixture:
    def __init__(self, size=2, fail=False):
        self.dialed = []
        self.fail = fail
        self.metrics = MetricsRegistry()
        self.pool = LdapClientPool(self._dial, size=size, metrics=self.metrics)

    def _dial(self, remote):
        if self.fail:
            return None
        client = FakeClient(remote)
        self.dialed.append(client)
        return client

    def counter(self, name):
        return self.metrics.counter(name).value


class TestCheckout:
    def test_idle_client_is_reused_not_redialed(self):
        fx = PoolFixture()
        first = fx.pool.client_for("ldap://a:2135/")
        again = fx.pool.client_for("ldap://a:2135/")
        assert first is again
        assert len(fx.dialed) == 1
        assert fx.counter("pool.dials") == 1
        assert fx.counter("pool.reuses") == 1

    def test_busy_clients_warm_up_to_bound(self):
        fx = PoolFixture(size=2)
        a = fx.pool.client_for("ldap://a:2135/")
        a.pending_count = 1  # busy: checkout may warm another socket
        b = fx.pool.client_for("ldap://a:2135/")
        assert b is not a
        b.pending_count = 5
        # Bound reached: further checkouts share the least-loaded.
        c = fx.pool.client_for("ldap://a:2135/")
        assert c is a
        assert len(fx.dialed) == 2

    def test_least_loaded_selection(self):
        fx = PoolFixture(size=2)
        a = fx.pool.client_for("ldap://a:2135/")
        a.pending_count = 3
        b = fx.pool.client_for("ldap://a:2135/")
        b.pending_count = 1
        assert fx.pool.client_for("ldap://a:2135/") is b
        b.pending_count = 4
        assert fx.pool.client_for("ldap://a:2135/") is a

    def test_remotes_are_pooled_independently(self):
        fx = PoolFixture()
        a = fx.pool.client_for("ldap://a:2135/")
        b = fx.pool.client_for("ldap://b:2135/")
        assert a is not b
        assert len(fx.pool) == 2

    def test_dead_client_evicted_and_redialed(self):
        fx = PoolFixture()
        first = fx.pool.client_for("ldap://a:2135/")
        first.closed = True  # connection died under us
        second = fx.pool.client_for("ldap://a:2135/")
        assert second is not first
        assert len(fx.dialed) == 2
        assert fx.counter("pool.evictions") == 1
        assert len(fx.pool) == 1

    def test_dial_failure_falls_back_to_busy_live_client(self):
        fx = PoolFixture(size=2)
        a = fx.pool.client_for("ldap://a:2135/")
        a.pending_count = 1  # busy enough that checkout wants to grow
        fx.fail = True
        assert fx.pool.client_for("ldap://a:2135/") is a

    def test_dial_failure_with_no_live_client_returns_none(self):
        fx = PoolFixture(fail=True)
        assert fx.pool.client_for("ldap://a:2135/") is None
        assert len(fx.pool) == 0

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            LdapClientPool(lambda remote: None, size=0)


class TestLifecycle:
    def test_discard_unbinds_and_next_checkout_redials(self):
        fx = PoolFixture()
        first = fx.pool.client_for("ldap://a:2135/")
        fx.pool.discard("ldap://a:2135/", first)
        assert first.unbound == 1
        assert len(fx.pool) == 0
        second = fx.pool.client_for("ldap://a:2135/")
        assert second is not first

    def test_discard_of_unknown_client_still_unbinds(self):
        fx = PoolFixture()
        stray = FakeClient("ldap://a:2135/")
        fx.pool.discard("ldap://a:2135/", stray)
        assert stray.unbound == 1

    def test_clear_unbinds_everything(self):
        fx = PoolFixture()
        a = fx.pool.client_for("ldap://a:2135/")
        b = fx.pool.client_for("ldap://b:2135/")
        fx.pool.clear()
        assert a.unbound == 1 and b.unbound == 1
        assert len(fx.pool) == 0


class TestGiisIntegration:
    def test_chained_queries_share_warm_connections(self):
        """N distinct VO-wide searches dial each child exactly once."""
        tb = GridTestbed(seed=1)
        giis = build_vo(tb, n_gris=3)
        client = tb.client("user", giis)
        dials = giis.backend.metrics.counter("pool.dials")
        for i in range(4):
            out = client.search("o=Grid", filter=f"(hn=r{i % 3})")
            assert len(out) == 1
        assert dials.value == 3  # one warm connection per child, ever
        assert giis.backend.metrics.counter("pool.reuses").value > 0

    def test_shutdown_releases_child_connections(self):
        tb = GridTestbed(seed=1)
        giis = build_vo(tb, n_gris=2)
        client = tb.client("user", giis)
        client.search("o=Grid", filter="(objectclass=computer)")
        assert len(giis.backend.pool) == 2
        giis.backend.shutdown()
        assert len(giis.backend.pool) == 0
