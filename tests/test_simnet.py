"""Tests for the simulated network: connections, datagrams, partitions."""

import pytest

from repro.net.links import LinkModel
from repro.net.sim import Simulator
from repro.net.simnet import SimNetwork
from repro.net.transport import ConnectionClosed, TransportError


def make_net(n=3, seed=0, link=None):
    sim = Simulator(seed=seed)
    net = SimNetwork(sim, default_link=link)
    nodes = [net.add_node(f"h{i}") for i in range(n)]
    return sim, net, nodes


class TestConnections:
    def test_echo_roundtrip(self):
        sim, net, (a, b, _) = make_net()
        received = []

        def handler(conn):
            conn.set_receiver(lambda m: conn.send(b"echo:" + m))

        b.listen(389, handler)
        conn = a.connect(("h1", 389))
        conn.set_receiver(received.append)
        conn.send(b"hello")
        sim.run()
        assert received == [b"echo:hello"]

    def test_message_boundaries_preserved(self):
        sim, net, (a, b, _) = make_net()
        got = []
        b.listen(1, lambda c: c.set_receiver(got.append))
        conn = a.connect(("h1", 1))
        conn.send(b"one")
        conn.send(b"two")
        sim.run()
        assert got == [b"one", b"two"]

    def test_fifo_despite_jitter(self):
        link = LinkModel(latency=0.01, jitter=0.05)
        sim, net, (a, b, _) = make_net(link=link, seed=3)
        got = []
        b.listen(1, lambda c: c.set_receiver(got.append))
        conn = a.connect(("h1", 1))
        msgs = [str(i).encode() for i in range(50)]
        for m in msgs:
            conn.send(m)
        sim.run()
        assert got == msgs

    def test_lossy_link_still_reliable(self):
        # Connections model loss as retransmission delay, not drops.
        link = LinkModel(latency=0.01, loss=0.5)
        sim, net, (a, b, _) = make_net(link=link, seed=5)
        got = []
        b.listen(1, lambda c: c.set_receiver(got.append))
        conn = a.connect(("h1", 1))
        for i in range(20):
            conn.send(str(i).encode())
        sim.run()
        assert len(got) == 20

    def test_receiver_installed_late_gets_backlog(self):
        sim, net, (a, b, _) = make_net()
        server_conns = []
        b.listen(1, server_conns.append)
        conn = a.connect(("h1", 1))
        conn.send(b"early")
        sim.run()
        got = []
        server_conns[0].set_receiver(got.append)
        assert got == [b"early"]

    def test_connect_no_listener(self):
        sim, net, (a, b, _) = make_net()
        with pytest.raises(ConnectionClosed):
            a.connect(("h1", 999))

    def test_connect_unknown_host(self):
        sim, net, (a, *_rest) = make_net()
        with pytest.raises(TransportError):
            a.connect(("ghost", 1))

    def test_send_after_close_raises(self):
        sim, net, (a, b, _) = make_net()
        b.listen(1, lambda c: None)
        conn = a.connect(("h1", 1))
        conn.close()
        with pytest.raises(ConnectionClosed):
            conn.send(b"x")

    def test_peer_observes_close(self):
        sim, net, (a, b, _) = make_net()
        server_conns = []
        b.listen(1, server_conns.append)
        conn = a.connect(("h1", 1))
        closed = []
        server_conns[0].set_close_handler(lambda: closed.append(1))
        conn.close()
        sim.run()
        assert closed == [1]
        assert server_conns[0].closed

    def test_duplicate_listen_rejected(self):
        sim, net, (a, *_r) = make_net()
        a.listen(1, lambda c: None)
        with pytest.raises(TransportError):
            a.listen(1, lambda c: None)

    def test_traffic_stats(self):
        sim, net, (a, b, _) = make_net()
        b.listen(1, lambda c: None)
        conn = a.connect(("h1", 1))
        conn.send(b"12345")
        sim.run()
        assert net.stats.messages == 1
        assert net.stats.bytes == 5


class TestPartitions:
    def test_partition_blocks_connect(self):
        sim, net, (a, b, c) = make_net()
        b.listen(1, lambda c_: None)
        net.partition(["h0"], ["h1", "h2"])
        with pytest.raises(ConnectionClosed):
            a.connect(("h1", 1))

    def test_partition_fails_existing_connection(self):
        sim, net, (a, b, _) = make_net()
        b.listen(1, lambda c_: None)
        conn = a.connect(("h1", 1))
        net.partition(["h0"], ["h1", "h2"])
        with pytest.raises(ConnectionClosed):
            conn.send(b"x")
        assert conn.closed

    def test_same_side_still_works(self):
        sim, net, (a, b, c) = make_net()
        got = []
        c.listen(1, lambda conn: conn.set_receiver(got.append))
        net.partition(["h0"], ["h1", "h2"])
        conn = b.connect(("h2", 1))
        conn.send(b"ok")
        sim.run()
        assert got == [b"ok"]

    def test_heal_restores(self):
        sim, net, (a, b, _) = make_net()
        b.listen(1, lambda c_: None)
        net.partition(["h0"], ["h1"])
        net.heal()
        a.connect(("h1", 1))  # no raise

    def test_unlisted_hosts_form_implicit_group(self):
        sim, net, nodes = make_net(4)
        net.partition(["h0"])
        assert net.path_usable("h1", "h2")
        assert not net.path_usable("h0", "h3")

    def test_host_in_two_groups_rejected(self):
        sim, net, _ = make_net()
        with pytest.raises(TransportError):
            net.partition(["h0"], ["h0", "h1"])

    def test_in_flight_message_dropped_on_partition(self):
        link = LinkModel(latency=1.0)
        sim, net, (a, b, _) = make_net(link=link)
        got = []
        b.listen(1, lambda c: c.set_receiver(got.append))
        conn = a.connect(("h1", 1))
        conn.send(b"doomed")
        net.partition(["h0"], ["h1"])
        sim.run()
        assert got == []


class TestCrashes:
    def test_crashed_node_unreachable(self):
        sim, net, (a, b, _) = make_net()
        b.listen(1, lambda c_: None)
        b.crash()
        with pytest.raises(ConnectionClosed):
            a.connect(("h1", 1))

    def test_recover(self):
        sim, net, (a, b, _) = make_net()
        b.listen(1, lambda c_: None)
        b.crash()
        b.recover()
        a.connect(("h1", 1))


class TestDatagrams:
    def test_delivery(self):
        sim, net, (a, b, _) = make_net()
        got = []
        b.on_datagram(500, lambda src, p: got.append((src[0], p)))
        a.send_datagram(("h1", 500), b"ping")
        sim.run()
        assert got == [("h0", b"ping")]

    def test_loss_drops_silently(self):
        link = LinkModel(latency=0.001, loss=1.0)
        sim, net, (a, b, _) = make_net(link=link)
        got = []
        b.on_datagram(500, lambda src, p: got.append(p))
        for _ in range(10):
            a.send_datagram(("h1", 500), b"x")
        sim.run()
        assert got == []
        assert net.stats.datagrams_lost == 10

    def test_partition_drops(self):
        sim, net, (a, b, _) = make_net()
        got = []
        b.on_datagram(500, lambda src, p: got.append(p))
        net.partition(["h0"], ["h1"])
        a.send_datagram(("h1", 500), b"x")
        sim.run()
        assert got == []

    def test_no_handler_is_noop(self):
        sim, net, (a, b, _) = make_net()
        a.send_datagram(("h1", 500), b"x")
        sim.run()  # nothing raised

    def test_statistical_loss(self):
        link = LinkModel(latency=0.001, loss=0.25)
        sim, net, (a, b, _) = make_net(link=link, seed=11)
        got = []
        b.on_datagram(500, lambda src, p: got.append(p))
        for _ in range(2000):
            a.send_datagram(("h1", 500), b"x")
        sim.run()
        assert 0.70 < len(got) / 2000 < 0.80


class TestMulticast:
    def make_sites(self):
        sim = Simulator(seed=0)
        net = SimNetwork(sim)
        a1 = net.add_node("a1", site="A")
        a2 = net.add_node("a2", site="A")
        b1 = net.add_node("b1", site="B")
        return sim, net, a1, a2, b1

    def test_site_scope_limits_reach(self):
        sim, net, a1, a2, b1 = self.make_sites()
        got = {"a2": [], "b1": []}
        a2.join_multicast("slp", 427, lambda s, p: got["a2"].append(p))
        b1.join_multicast("slp", 427, lambda s, p: got["b1"].append(p))
        n = a1.send_multicast("slp", 427, b"find", scope="site")
        sim.run()
        assert n == 1
        assert got["a2"] == [b"find"]
        assert got["b1"] == []  # cross-site: out of multicast scope

    def test_global_scope_reaches_all(self):
        sim, net, a1, a2, b1 = self.make_sites()
        got = []
        a2.join_multicast("g", 1, lambda s, p: got.append("a2"))
        b1.join_multicast("g", 1, lambda s, p: got.append("b1"))
        a1.send_multicast("g", 1, b"x", scope="global")
        sim.run()
        assert sorted(got) == ["a2", "b1"]

    def test_sender_not_delivered_to_self(self):
        sim, net, a1, a2, b1 = self.make_sites()
        got = []
        a1.join_multicast("g", 1, lambda s, p: got.append(p))
        a1.send_multicast("g", 1, b"x")
        sim.run()
        assert got == []

    def test_leave_multicast(self):
        sim, net, a1, a2, b1 = self.make_sites()
        got = []
        a2.join_multicast("g", 1, lambda s, p: got.append(p))
        a2.leave_multicast("g", 1)
        a1.send_multicast("g", 1, b"x")
        sim.run()
        assert got == []
