"""Tests for the security substrate: RSA, certificates, tokens, ACLs."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ldap.entry import Entry
from repro.security import (
    ANONYMOUS,
    AccessPolicy,
    AccessRule,
    AuthError,
    CertError,
    CertificateAuthority,
    Groups,
    TrustStore,
    attribute_restricted_policy,
    authenticated_policy,
    existence_only_policy,
    generate_keypair,
    make_token,
    open_policy,
    sign_message,
    verify_chain,
    verify_message,
    verify_token,
)
from repro.security.numtheory import generate_prime, is_probable_prime, modinv
from repro.security.sasl import AnonymousOnly, GsiAuthenticator

RNG = random.Random(1234)
BITS = 256  # small keys keep the suite fast; algorithms are size-agnostic

# Shared fixtures built once: key generation dominates test runtime.
CA = CertificateAuthority("CN=TestCA", rng=RNG, bits=BITS)
ALICE = CA.issue("CN=alice", rng=RNG, bits=BITS)
BOB = CA.issue("CN=bob", rng=RNG, bits=BITS)
OTHER_CA = CertificateAuthority("CN=RogueCA", rng=RNG, bits=BITS)
MALLORY = OTHER_CA.issue("CN=alice", rng=RNG, bits=BITS)  # same name, wrong CA
TRUST = TrustStore([CA.certificate])


class TestNumTheory:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 97, 7919, 104729, 2**31 - 1])
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", [0, 1, 4, 100, 7917, 2**31 - 2, 561, 41041])
    def test_known_composites(self, n):
        # includes Carmichael numbers 561 and 41041
        assert not is_probable_prime(n)

    def test_generate_prime_size(self):
        p = generate_prime(64, random.Random(0))
        assert p.bit_length() == 64
        assert is_probable_prime(p)

    def test_generate_prime_too_small(self):
        with pytest.raises(ValueError):
            generate_prime(4)

    def test_modinv(self):
        assert (modinv(3, 11) * 3) % 11 == 1
        with pytest.raises(ValueError):
            modinv(4, 8)

    @given(st.integers(min_value=2, max_value=10**6))
    @settings(max_examples=50)
    def test_modinv_property(self, a):
        m = 1_000_003  # prime
        inv = modinv(a % m or 1, m)
        assert ((a % m or 1) * inv) % m == 1


class TestRsa:
    def test_sign_verify(self):
        kp = generate_keypair(BITS, random.Random(5))
        sig = kp.private.sign(b"hello grid")
        assert kp.public.verify(b"hello grid", sig)

    def test_tampered_message_fails(self):
        kp = generate_keypair(BITS, random.Random(6))
        sig = kp.private.sign(b"hello")
        assert not kp.public.verify(b"hullo", sig)

    def test_wrong_key_fails(self):
        a = generate_keypair(BITS, random.Random(7))
        b = generate_keypair(BITS, random.Random(8))
        sig = a.private.sign(b"msg")
        assert not b.public.verify(b"msg", sig)

    def test_signature_out_of_range(self):
        kp = generate_keypair(BITS, random.Random(9))
        assert not kp.public.verify(b"msg", 0)
        assert not kp.public.verify(b"msg", kp.public.n + 5)

    def test_public_key_dict_roundtrip(self):
        from repro.security.rsa import PublicKey

        kp = generate_keypair(BITS, random.Random(10))
        assert PublicKey.from_dict(kp.public.to_dict()) == kp.public

    def test_fingerprint_stable(self):
        kp = generate_keypair(BITS, random.Random(11))
        assert kp.public.fingerprint() == kp.public.fingerprint()


class TestCertificates:
    def test_chain_verifies(self):
        assert verify_chain(ALICE.chain, [CA.certificate], now=1.0) == "CN=alice"

    def test_wrong_ca_rejected(self):
        with pytest.raises(CertError):
            verify_chain(MALLORY.chain, [CA.certificate], now=1.0)

    def test_expired_rejected(self):
        with pytest.raises(CertError, match="expired"):
            verify_chain(ALICE.chain, [CA.certificate], now=1e12)

    def test_empty_chain(self):
        with pytest.raises(CertError, match="empty"):
            verify_chain([], [CA.certificate], now=1.0)

    def test_tampered_cert_rejected(self):
        from dataclasses import replace

        bad = replace(ALICE.certificate, subject="CN=root")
        with pytest.raises(CertError):
            verify_chain([bad, CA.certificate], [CA.certificate], now=1.0)

    def test_proxy_delegation(self):
        proxy = ALICE.delegate(now=1.0, rng=RNG, bits=BITS)
        identity = verify_chain(proxy.chain, [CA.certificate], now=2.0)
        assert identity == "CN=alice"  # proxy resolves to delegator
        assert proxy.certificate.is_proxy

    def test_proxy_of_proxy(self):
        p1 = ALICE.delegate(now=1.0, rng=RNG, bits=BITS)
        p2 = p1.delegate(now=1.0, rng=RNG, bits=BITS)
        assert verify_chain(p2.chain, [CA.certificate], now=2.0) == "CN=alice"

    def test_proxy_expiry(self):
        proxy = ALICE.delegate(now=1.0, lifetime=10.0, rng=RNG, bits=BITS)
        with pytest.raises(CertError):
            verify_chain(proxy.chain, [CA.certificate], now=100.0)

    def test_proxy_signed_by_wrong_key_rejected(self):
        proxy = ALICE.delegate(now=1.0, rng=RNG, bits=BITS)
        # splice bob's chain under alice's proxy cert
        forged = (proxy.certificate,) + BOB.chain
        with pytest.raises(CertError):
            verify_chain(forged, [CA.certificate], now=2.0)


class TestTokens:
    def test_roundtrip(self):
        raw = make_token(ALICE, "ldap://giis:2135", now=50.0, nonce="n1")
        identity = verify_token(
            raw, TRUST, "ldap://giis:2135", now=60.0, expected_nonce="n1"
        )
        assert identity == "CN=alice"

    def test_wrong_target_rejected(self):
        raw = make_token(ALICE, "ldap://giis:2135", now=50.0)
        with pytest.raises(AuthError, match="target"):
            verify_token(raw, TRUST, "ldap://other:2135", now=60.0)

    def test_stale_token_rejected(self):
        raw = make_token(ALICE, "svc", now=50.0)
        with pytest.raises(AuthError, match="stale"):
            verify_token(raw, TRUST, "svc", now=50_000.0)

    def test_untrusted_chain_rejected(self):
        raw = make_token(MALLORY, "svc", now=50.0)
        with pytest.raises(AuthError):
            verify_token(raw, TRUST, "svc", now=60.0)

    def test_garbage_rejected(self):
        with pytest.raises(AuthError, match="malformed"):
            verify_token(b"not json", TRUST, "svc", now=0.0)

    def test_nonce_mismatch(self):
        raw = make_token(ALICE, "svc", now=50.0, nonce="a")
        with pytest.raises(AuthError, match="nonce"):
            verify_token(raw, TRUST, "svc", now=60.0, expected_nonce="b")

    def test_proxy_token_resolves_to_base_identity(self):
        proxy = ALICE.delegate(now=40.0, rng=RNG, bits=BITS)
        raw = make_token(proxy, "svc", now=50.0)
        assert verify_token(raw, TRUST, "svc", now=60.0) == "CN=alice"


class TestSignedMessages:
    def test_roundtrip(self):
        raw = sign_message(ALICE, b"register me")
        identity, payload = verify_message(raw, TRUST, now=1.0)
        assert identity == "CN=alice"
        assert payload == b"register me"

    def test_binary_payload(self):
        blob = bytes(range(256))
        raw = sign_message(BOB, blob)
        _, payload = verify_message(raw, TRUST, now=1.0)
        assert payload == blob

    def test_tampered_payload_rejected(self):
        import json

        raw = sign_message(ALICE, b"original")
        data = json.loads(raw)
        data["payload"] = "tampered!"
        with pytest.raises(AuthError, match="signature"):
            verify_message(json.dumps(data).encode(), TRUST, now=1.0)

    def test_untrusted_signer_rejected(self):
        raw = sign_message(MALLORY, b"x")
        with pytest.raises(AuthError):
            verify_message(raw, TRUST, now=1.0)


def entry():
    return Entry(
        "hn=hostX, o=O1",
        objectclass="computer",
        hn="hostX",
        system="linux redhat 6.2",
        load5="0.7",
    )


class TestAccessPolicies:
    def test_open_policy(self):
        p = open_policy()
        assert p.filter_entry(ANONYMOUS, entry()) == entry()

    def test_authenticated_policy(self):
        p = authenticated_policy()
        assert p.filter_entry(ANONYMOUS, entry()) is None
        assert p.filter_entry("CN=alice", entry()) == entry()

    def test_existence_only(self):
        p = existence_only_policy()
        visible = p.filter_entry(ANONYMOUS, entry())
        assert visible is not None
        assert visible.dn == entry().dn
        assert visible.attribute_names() == ["objectclass"]

    def test_attribute_restricted(self):
        # §7's example: OS type public, load average for specific users.
        p = attribute_restricted_policy(
            public_attrs=["objectclass", "hn", "system"],
            restricted_attrs=["load5"],
            allowed_identities=["CN=alice"],
        )
        anon = p.filter_entry(ANONYMOUS, entry())
        assert anon.has("system") and not anon.has("load5")
        alice = p.filter_entry("CN=alice", entry())
        assert alice.has("load5")
        # but alice cannot see attributes in neither list
        assert p.restricted_attrs(ANONYMOUS, entry()) == ["load5"]

    def test_group_subject(self):
        groups = Groups({"vo-a": ["CN=bob"]})
        p = AccessPolicy(
            [AccessRule.make("group:vo-a")], default_allow=False, groups=groups
        )
        assert p.filter_entry("CN=bob", entry()) == entry()
        assert p.filter_entry("CN=eve", entry()) is None
        groups.add("vo-a", "CN=eve")
        assert p.filter_entry("CN=eve", entry()) == entry()

    def test_subtree_scoping(self):
        p = AccessPolicy(
            [
                AccessRule.make("*", base="o=O1"),
            ],
            default_allow=False,
        )
        assert p.filter_entry(ANONYMOUS, entry()) == entry()
        outside = Entry("hn=y, o=O2", objectclass="computer", hn="y")
        assert p.filter_entry(ANONYMOUS, outside) is None

    def test_deny_rule_ordering(self):
        p = AccessPolicy(
            [
                AccessRule.make("CN=eve", allow=False),
                AccessRule.make("*"),
            ]
        )
        assert p.filter_entry("CN=eve", entry()) is None
        assert p.filter_entry("CN=alice", entry()) == entry()

    def test_filter_entries_batch(self):
        p = authenticated_policy()
        out = p.filter_entries("CN=a", [entry(), entry()])
        assert len(out) == 2
        assert p.filter_entries(ANONYMOUS, [entry()]) == []


class TestAuthenticators:
    def test_anonymous_only(self):
        auth = AnonymousOnly()
        assert auth.authenticate("", "simple", b"", 0.0).identity == ANONYMOUS
        with pytest.raises(AuthError):
            auth.authenticate("", "GSI", b"x", 0.0)

    def test_gsi_authenticator_token(self):
        auth = GsiAuthenticator(TRUST, "svc", server_credential=BOB)
        token = make_token(ALICE, "svc", now=10.0)
        outcome = auth.authenticate("", "GSI", token, now=11.0)
        assert outcome.identity == "CN=alice"
        # mutual auth: server returned its own token bound to alice
        assert (
            verify_token(outcome.server_credentials, TRUST, "CN=alice", now=11.0)
            == "CN=bob"
        )

    def test_gsi_authenticator_passwords(self):
        auth = GsiAuthenticator(
            TRUST, "svc", passwords={"cn=admin": ("hunter2", "CN=admin")}
        )
        assert (
            auth.authenticate("cn=admin", "simple", b"hunter2", 0.0).identity
            == "CN=admin"
        )
        with pytest.raises(AuthError):
            auth.authenticate("cn=admin", "simple", b"wrong", 0.0)
        assert auth.authenticate("", "simple", b"", 0.0).identity == ANONYMOUS

    def test_gsi_rejects_bad_token(self):
        auth = GsiAuthenticator(TRUST, "svc")
        with pytest.raises(AuthError):
            auth.authenticate("", "GSI", b"junk", 0.0)


class TestCredentialSerialization:
    def test_roundtrip(self):
        from repro.security import credential_from_json, credential_to_json

        text = credential_to_json(ALICE)
        back = credential_from_json(text)
        assert back.identity == "CN=alice"
        assert back.chain == ALICE.chain
        # the private key still works
        sig = back.sign(b"payload")
        assert ALICE.certificate.public_key.verify(b"payload", sig)

    def test_roundtripped_credential_verifies(self):
        from repro.security import credential_from_json, credential_to_json

        back = credential_from_json(credential_to_json(ALICE))
        assert verify_chain(back.chain, [CA.certificate], now=1.0) == "CN=alice"

    def test_proxy_roundtrip(self):
        from repro.security import credential_from_json, credential_to_json

        proxy = ALICE.delegate(now=1.0, rng=RNG, bits=BITS)
        back = credential_from_json(credential_to_json(proxy))
        assert verify_chain(back.chain, [CA.certificate], now=2.0) == "CN=alice"

    def test_malformed_rejected(self):
        from repro.security import credential_from_json

        with pytest.raises(CertError):
            credential_from_json("not json")
        with pytest.raises(CertError):
            credential_from_json('{"chain": [], "key": {"n": 1, "d": 1}}')
