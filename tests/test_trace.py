"""Distributed tracing: ids, sampling, export, propagation, and the CLI.

The headline property (ISSUE 4's acceptance criterion): a chained query
through one GIIS and two GRIS children produces JSONL spans on every
server sharing ONE trace id, and grid-info-trace renders them as a
single tree with correct parent/child edges — in both simulator and TCP
modes.  Plus the reverse of the fail-closed chain-depth test: the trace
control is non-critical, so a malformed payload is ignored, never an
error.
"""

import io
import json
import time

import pytest

from repro.giis.core import GiisBackend
from repro.grip.messages import GrrpMessage
from repro.grip.registration import Inviter, Registrant
from repro.gris.config import ConfigError, load_config
from repro.ldap.backend import RequestContext
from repro.ldap.client import LdapClient
from repro.ldap.dit import Scope
from repro.ldap.filter import parse as parse_filter
from repro.ldap.protocol import (
    TRACE_CONTEXT_OID,
    Control,
    ProtocolError,
    SearchRequest,
    TraceContext,
)
from repro.ldap.server import LdapServer
from repro.net.sim import Simulator
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    MonitorBackend,
    MonitoredBackend,
    RingSink,
    SlowSpanLog,
    Tracer,
    format_traceparent,
    parse_traceparent,
    span_record,
)
from repro.testbed import GridTestbed
from repro.tools.grid_info_trace import main as trace_main, render_traces


def make_tracer(clock=None, seed=0, **kwargs):
    clock = clock or Simulator()
    return Tracer(clock.now, seed=seed, **kwargs), clock


# ---------------------------------------------------------------------------
# ids: hex, unique, seedable


class TestIds:
    def test_hex_id_shapes(self):
        tracer, _ = make_tracer()
        span = tracer.start("op")
        assert len(span.trace_id) == 32 and len(span.span_id) == 16
        int(span.trace_id, 16)
        int(span.span_id, 16)

    def test_ids_unique_within_tracer(self):
        tracer, _ = make_tracer()
        spans = [tracer.start("op") for _ in range(100)]
        assert len({s.trace_id for s in spans}) == 100
        assert len({s.span_id for s in spans}) == 100

    def test_seeded_tracers_are_deterministic(self):
        a, _ = make_tracer(seed=42)
        b, _ = make_tracer(seed=42)
        assert [a.start("x").trace_id for _ in range(3)] == [
            b.start("x").trace_id for _ in range(3)
        ]

    def test_different_seeds_diverge(self):
        a, _ = make_tracer(seed=1)
        b, _ = make_tracer(seed=2)
        assert a.start("x").trace_id != b.start("x").trace_id

    def test_child_shares_trace_id(self):
        tracer, _ = make_tracer()
        root = tracer.start("root")
        child = root.child("child")
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        assert child.parent is root

    def test_remote_parenting(self):
        tracer, _ = make_tracer()
        span = tracer.start("op", remote=("ab" * 16, "cd" * 8, True))
        assert span.trace_id == "ab" * 16
        assert span.parent.span_id == "cd" * 8
        assert span.sampled

    def test_traceparent_round_trip(self):
        text = format_traceparent("ab" * 16, "cd" * 8, False)
        assert parse_traceparent(text) == ("ab" * 16, "cd" * 8, False)
        assert parse_traceparent("junk") is None
        assert parse_traceparent("00-short-" + "cd" * 8 + "-01") is None


# ---------------------------------------------------------------------------
# head-based sampling


class TestSampling:
    def test_unsampled_roots_skip_sinks(self):
        sink = RingSink()
        metrics = MetricsRegistry()
        tracer, _ = make_tracer(metrics=metrics, sample_rate=0.0)
        tracer.add_sink(sink)
        tracer.start("op").finish()
        assert sink.spans() == []
        assert metrics.get("trace.spans.started").value == 1
        assert metrics.get("trace.spans.finished").value == 1
        assert metrics.get("trace.spans.sampled_out").value == 1

    def test_sampled_roots_reach_sinks(self):
        sink = RingSink()
        metrics = MetricsRegistry()
        tracer, _ = make_tracer(metrics=metrics, sample_rate=1.0)
        tracer.add_sink(sink)
        tracer.start("op").finish()
        assert len(sink.spans()) == 1
        assert metrics.get("trace.spans.sampled_out").value == 0

    def test_children_inherit_root_decision(self):
        tracer, _ = make_tracer(sample_rate=0.0)
        root = tracer.start("root")
        assert not root.child("child").sampled
        # raising the rate later cannot resurrect this tree
        tracer.sample_rate = 1.0
        assert not root.child("late-child").sampled

    def test_remote_decision_is_honored(self):
        sink = RingSink()
        tracer, _ = make_tracer(sample_rate=1.0)
        tracer.add_sink(sink)
        span = tracer.start("op", remote=("ab" * 16, "cd" * 8, False))
        assert not span.sampled
        span.finish()
        assert sink.spans() == []


# ---------------------------------------------------------------------------
# satellites: duration clamp, ring bounds


class TestDurationClamp:
    def test_clock_rewind_clamps_to_zero(self):
        metrics = MetricsRegistry()
        sim = Simulator()
        tracer = Tracer(sim.now, metrics=metrics)
        sim.run_for(10.0)
        span = tracer.start("op")
        # a fresh simulator = the clock rewound under the open span
        tracer.now = Simulator().now
        span.finish()
        assert span.duration == 0.0
        assert metrics.get("trace.clock_skew").value >= 1

    def test_normal_duration_unaffected(self):
        sim = Simulator()
        metrics = MetricsRegistry()
        tracer = Tracer(sim.now, metrics=metrics)
        span = tracer.start("op")
        sim.run_for(2.0)
        span.finish()
        assert span.duration == pytest.approx(2.0)
        assert metrics.get("trace.clock_skew").value == 0


class TestRingSink:
    def test_eviction_counts_drops(self):
        metrics = MetricsRegistry()
        sink = RingSink(capacity=3, metrics=metrics)
        tracer, _ = make_tracer()
        tracer.add_sink(sink)
        spans = [tracer.start(f"op{i}") for i in range(5)]
        for span in spans:
            span.finish()
        assert [s.name for s in sink.spans()] == ["op2", "op3", "op4"]
        assert sink.dropped == 2
        assert metrics.get("trace.ring.dropped").value == 2
        assert metrics.get("trace.ring.size").value == 3

    def test_works_without_registry(self):
        sink = RingSink(capacity=1)
        tracer, _ = make_tracer()
        tracer.add_sink(sink)
        tracer.start("a").finish()
        tracer.start("b").finish()
        assert sink.dropped == 1


# ---------------------------------------------------------------------------
# JSONL export


class TestJsonlSink:
    def test_record_schema(self):
        buf = io.StringIO()
        sink = JsonlSink(buf, server_id="giis:2135")
        tracer, sim = make_tracer()
        tracer.add_sink(sink)
        root = tracer.start("root", base="o=Grid")
        child = root.child("child")
        sim.run_for(1.0)
        child.finish()
        root.finish()
        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert len(records) == 2
        child_rec, root_rec = records
        assert root_rec["v"] == 1
        assert root_rec["server_id"] == "giis:2135"
        assert root_rec["parent_span_id"] is None
        assert root_rec["tags"] == {"base": "o=Grid"}
        assert child_rec["parent_span_id"] == root_rec["span_id"]
        assert child_rec["trace_id"] == root_rec["trace_id"]
        assert child_rec["duration"] == pytest.approx(1.0)

    def test_file_path_mode(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlSink(path, server_id="s1")
        tracer, _ = make_tracer()
        tracer.add_sink(sink)
        tracer.start("op").finish()
        sink.close()
        tracer.start("after-close").finish()  # swallowed, not an error
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "op"

    def test_server_id_falls_back_to_tracer(self):
        buf = io.StringIO()
        tracer, _ = make_tracer(server_id="from-tracer")
        tracer.add_sink(JsonlSink(buf))
        tracer.start("op").finish()
        assert json.loads(buf.getvalue())["server_id"] == "from-tracer"


# ---------------------------------------------------------------------------
# slow-query log


class TestSlowSpanLog:
    def _tree(self, tracer, sim, root_seconds):
        root = tracer.start("ldap.search")
        child = root.child("gris.collect")
        sim.run_for(root_seconds)
        child.finish()
        root.finish()
        return root

    def test_fast_trees_discarded_slow_captured(self):
        metrics = MetricsRegistry()
        log = SlowSpanLog(threshold_ms=500.0, metrics=metrics)
        tracer, sim = make_tracer(metrics=metrics)
        tracer.add_sink(log)
        self._tree(tracer, sim, 0.1)  # 100ms: fast
        slow_root = self._tree(tracer, sim, 2.0)  # 2s: slow
        captured = log.slow_traces()
        assert len(captured) == 1
        root, tree = captured[0]
        assert root is slow_root
        assert [s.name for s in tree] == ["gris.collect", "ldap.search"]
        assert metrics.get("trace.slow.captured").value == 1

    def test_capacity_eviction(self):
        log = SlowSpanLog(threshold_ms=0.0, capacity=2)
        tracer, sim = make_tracer()
        tracer.add_sink(log)
        roots = [self._tree(tracer, sim, 0.5) for _ in range(4)]
        kept = [root for root, _ in log.slow_traces()]
        assert kept == roots[2:]

    def test_abandoned_traces_bounded(self):
        log = SlowSpanLog(threshold_ms=0.0, max_pending=4)
        tracer, _ = make_tracer()
        tracer.add_sink(log)
        parents = [tracer.start(f"root{i}") for i in range(10)]
        for parent in parents:
            parent.child("child").finish()  # child finishes, root never does
        assert len(log._pending) <= 4

    def test_remote_parented_root_resolves_tree(self):
        log = SlowSpanLog(threshold_ms=0.0)
        tracer, _ = make_tracer()
        tracer.add_sink(log)
        span = tracer.start("ldap.search", remote=("ab" * 16, "cd" * 8, True))
        span.finish()
        assert len(log.slow_traces()) == 1

    def test_rendered_under_cn_slow(self):
        metrics = MetricsRegistry()
        log = SlowSpanLog(threshold_ms=0.0)
        tracer, sim = make_tracer(metrics=metrics, server_id="s1")
        tracer.add_sink(log)
        self._tree(tracer, sim, 1.0)
        monitor = MonitorBackend(metrics, slow_log=log)
        req = SearchRequest(
            base="cn=slow, cn=monitor",
            scope=Scope.SUBTREE,
            filter=parse_filter("(objectclass=mdsslowtrace)"),
        )
        out = monitor.search(req, RequestContext())
        assert len(out.entries) == 1
        entry = out.entries[0]
        records = [json.loads(v) for v in entry.get("mdsspan")]
        assert len(records) == 2
        assert entry.first("mdsrootname") == "ldap.search"
        assert float(entry.first("mdsrootms")) == pytest.approx(1000.0)
        assert {r["server_id"] for r in records} == {"s1"}


# ---------------------------------------------------------------------------
# the control: BER round-trip; malformed must be IGNORED (non-critical),
# the reverse of the fail-closed chain-depth behavior


class TestTraceContextControl:
    def test_round_trip(self):
        tc = TraceContext("ab" * 16, "cd" * 8, sampled=False)
        control = tc.to_control()
        assert control.oid == TRACE_CONTEXT_OID
        assert control.criticality is False
        assert TraceContext.from_control(control) == tc

    def test_malformed_raises_from_control(self):
        for value in (b"", b"\xff\x00garbage", b"\x30\x02\x04\x00"):
            with pytest.raises(ProtocolError):
                TraceContext.from_control(Control(TRACE_CONTEXT_OID, False, value))

    def test_bad_hex_rejected(self):
        # well-formed BER but non-hex ids must also be rejected
        from repro.ldap import ber

        body = (
            ber.encode_octet_string("Z" * 32)
            + ber.encode_octet_string("cd" * 8)
            + ber.encode_boolean(True)
        )
        with pytest.raises(ProtocolError):
            TraceContext.from_control(
                Control(TRACE_CONTEXT_OID, False, ber.encode_sequence(body))
            )

    def test_find_skips_malformed(self):
        malformed = Control(TRACE_CONTEXT_OID, False, b"junk")
        assert TraceContext.find((malformed,)) is None
        good = TraceContext("ab" * 16, "cd" * 8)
        assert TraceContext.find((good.to_control(),)) == good
        assert TraceContext.find(()) is None

    def test_malformed_control_does_not_fail_search(self):
        """Non-critical: a garbage trace control must leave the search
        untouched — unlike chain-depth, which fails closed."""
        tb = GridTestbed(seed=3)
        tracer = Tracer(tb.sim.now, seed=7)
        sink = RingSink()
        tracer.add_sink(sink)
        gris = tb.standard_gris("r0", "hn=r0, o=Grid", tracer=tracer)
        client = tb.client("user", gris)
        out = client.search(
            "hn=r0, o=Grid",
            filter="(objectclass=computer)",
            controls=(Control(TRACE_CONTEXT_OID, False, b"\xffgarbage"),),
        )
        assert len(out.entries) == 1  # the search succeeded
        roots = sink.spans("ldap.search")
        assert len(roots) == 1 and roots[0].parent is None  # fresh local trace
        # ...and the rejection was counted, not swallowed silently
        assert gris.server.metrics.get("trace.context.malformed").value == 1

    def test_wellformed_control_parents_root(self):
        tb = GridTestbed(seed=4)
        tracer = Tracer(tb.sim.now, seed=8)
        sink = RingSink()
        tracer.add_sink(sink)
        gris = tb.standard_gris("r0", "hn=r0, o=Grid", tracer=tracer)
        client = tb.client("user", gris)
        caller = TraceContext("ab" * 16, "cd" * 8, sampled=True)
        out = client.search(
            "hn=r0, o=Grid",
            filter="(objectclass=computer)",
            controls=(caller.to_control(),),
        )
        assert len(out.entries) == 1
        root = sink.spans("ldap.search")[0]
        assert root.trace_id == "ab" * 16
        assert root.parent.span_id == "cd" * 8


# ---------------------------------------------------------------------------
# GRRP correlation: invitation -> turn-around REGISTER -> intake span


class TestGrrpCorrelation:
    def test_invite_context_parents_intake(self):
        sim = Simulator()
        ring = RingSink()
        metrics = MetricsRegistry()
        tracer = Tracer(sim.now, sinks=(ring,), seed=5, metrics=metrics)
        giis = GiisBackend("o=Grid", clock=sim, tracer=tracer)
        registrant = Registrant(
            sim,
            "ldap://gris:2135/",
            send=lambda directory, message: giis.apply_grrp(message),
            interval=30.0,
            ttl=90.0,
        )
        inviter = Inviter(
            sim,
            "ldap://giis:2135/o=Grid",
            send=lambda provider, message: registrant.handle_invitation(
                message.metadata["directory"], message
            ),
        )
        invite_span = tracer.start("giis.invite")
        inviter.invite("gris", vo="VO-A", trace=invite_span)
        invite_span.finish()

        intakes = ring.spans("grrp.intake")
        assert len(intakes) == 1
        assert intakes[0].trace_id == invite_span.trace_id
        assert intakes[0].parent.span_id == invite_span.span_id
        assert metrics.get("trace.propagated").value == 1

        # steady-state refresh is NOT part of the invite trace
        sim.run_for(31.0)
        intakes = ring.spans("grrp.intake")
        assert len(intakes) == 2
        assert intakes[1].trace_id != invite_span.trace_id

    def test_trace_context_survives_both_encodings(self):
        ctx = format_traceparent("ab" * 16, "cd" * 8, True)
        message = GrrpMessage(
            service_url="ldap://g:2135/",
            timestamp=0.0,
            valid_until=60.0,
            trace_context=ctx,
        )
        assert GrrpMessage.from_bytes(message.to_bytes()).trace_context == ctx
        assert GrrpMessage.from_entry(message.to_entry("o=G")).trace_context == ctx
        plain = GrrpMessage(service_url="ldap://g:2135/", valid_until=1.0)
        assert GrrpMessage.from_bytes(plain.to_bytes()).trace_context == ""


# ---------------------------------------------------------------------------
# the acceptance criterion: one GIIS + two GRIS children, ONE trace id
# everywhere, rendered as a single tree — simulator mode


def traced_vo(tmp_path):
    """A testbed VO where every server exports JSONL spans."""
    tb = GridTestbed(seed=11)
    logs = {}
    tracers = {}
    for i, name in enumerate(("giis", "gris-a", "gris-b")):
        path = tmp_path / f"{name}.jsonl"
        tracer = Tracer(tb.sim.now, seed=100 + i, server_id=name)
        tracer.add_sink(JsonlSink(path, server_id=name))
        logs[name] = path
        tracers[name] = tracer
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO-A", tracer=tracers["giis"])
    for name, host in (("gris-a", "ra"), ("gris-b", "rb")):
        gris = tb.standard_gris(
            host, f"hn={host}, o=Grid", tracer=tracers[name]
        )
        tb.register(gris, giis, interval=20.0, ttl=60.0, name=host)
    tb.run(1.0)
    return tb, giis, logs


def read_records(paths):
    records = []
    for path in paths:
        for line in path.read_text().splitlines():
            records.append(json.loads(line))
    return records


class TestDistributedTraceSimulator:
    def test_single_stitched_trace_across_three_servers(self, tmp_path):
        tb, giis, logs = traced_vo(tmp_path)
        client = tb.client("user", giis)
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert sorted(e.first("hn") for e in out) == ["ra", "rb"]

        # uninvited GRRP registrations mint their own (single-span)
        # traces — the query spans are what must stitch
        records = [
            r for r in read_records(logs.values()) if r["name"] != "grrp.intake"
        ]
        # every server exported spans...
        assert {r["server_id"] for r in records} == {"giis", "gris-a", "gris-b"}
        # ...all sharing ONE trace id
        assert len({r["trace_id"] for r in records}) == 1

        # parent/child edges stitch correctly across the process gap:
        # each GRIS root's parent is the GIIS's giis.child span for it
        by_id = {r["span_id"]: r for r in records}
        gris_roots = [
            r
            for r in records
            if r["name"] == "ldap.search" and r["server_id"] != "giis"
        ]
        assert len(gris_roots) == 2
        for root in gris_roots:
            parent = by_id[root["parent_span_id"]]
            assert parent["name"] == "giis.child"
            assert parent["server_id"] == "giis"
            # the hop (wire + queue) is non-negative in sim time
            assert parent["duration"] >= root["duration"]

    def test_renderer_produces_one_tree(self, tmp_path):
        tb, giis, logs = traced_vo(tmp_path)
        client = tb.client("user", giis)
        client.search("o=Grid", filter="(objectclass=computer)")
        records = read_records(logs.values())
        root = next(
            r
            for r in records
            if r["name"] == "ldap.search" and r["server_id"] == "giis"
        )
        buf = io.StringIO()
        rendered = render_traces(records, buf, trace_id=root["trace_id"])
        assert rendered == 1
        text = buf.getvalue()
        assert "trace " in text and "(3 servers" in text
        # GIIS root at depth 0; remote ldap.search nested under giis.child
        lines = text.splitlines()
        root_lines = [l for l in lines if l.startswith("└─ ") or l.startswith("├─ ")]
        assert len(root_lines) == 1 and "ldap.search [giis]" in root_lines[0]
        assert any("giis.child [giis]" in l and "hop " in l for l in lines)
        assert any(
            "ldap.search [gris-a]" in l and l.startswith((" ", "│")) for l in lines
        )

    def test_trace_cli_reads_jsonl_files(self, tmp_path):
        tb, giis, logs = traced_vo(tmp_path)
        client = tb.client("user", giis)
        client.search("o=Grid", filter="(objectclass=computer)")
        buf = io.StringIO()
        rc = trace_main([str(p) for p in logs.values()], out=buf)
        assert rc == 0
        assert "(3 servers" in buf.getvalue()  # the stitched query trace

    def test_sampled_out_root_silences_children_everywhere(self, tmp_path):
        tb = GridTestbed(seed=12)
        logs = []
        giis_tracer = Tracer(tb.sim.now, seed=1, sample_rate=0.0)
        tracers = [giis_tracer]
        for i, host in enumerate(("ra", "rb")):
            tracers.append(Tracer(tb.sim.now, seed=2 + i, sample_rate=1.0))
        for tracer, name in zip(tracers, ("giis", "ra", "rb")):
            path = tmp_path / f"{name}.jsonl"
            tracer.add_sink(JsonlSink(path, server_id=name))
            logs.append(path)
        giis = tb.add_giis("giis", "o=Grid", vo_name="VO-A", tracer=tracers[0])
        for tracer, host in zip(tracers[1:], ("ra", "rb")):
            gris = tb.standard_gris(host, f"hn={host}, o=Grid", tracer=tracer)
            tb.register(gris, giis, interval=20.0, ttl=60.0, name=host)
        tb.run(1.0)
        client = tb.client("user", giis)
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert len(out.entries) == 2
        # the GIIS root sampled out; GRIS tracers sample at 1.0 but must
        # honor the propagated decision: nothing exported anywhere
        assert read_records(logs) == []


# ---------------------------------------------------------------------------
# the same criterion over real TCP


class TestDistributedTraceTcp:
    def test_single_stitched_trace_over_tcp(self, tmp_path):
        from repro.gris.core import GrisBackend
        from repro.gris.provider import FunctionProvider
        from repro.ldap.dn import DN
        from repro.ldap.entry import Entry
        from repro.ldap.url import LdapUrl
        from repro.net.clock import WallClock
        from repro.net.tcp import TcpEndpoint

        clock = WallClock()
        endpoints = []
        logs = []
        try:
            # two GRIS servers, each exporting spans
            gris_urls = []
            for i, name in enumerate(("gris-a", "gris-b")):
                path = tmp_path / f"{name}.jsonl"
                logs.append(path)
                tracer = Tracer(clock.now, seed=200 + i, server_id=name)
                tracer.add_sink(JsonlSink(path, server_id=name))
                backend = GrisBackend(f"hn={name}, o=Grid", clock=clock)
                backend.add_provider(
                    FunctionProvider(
                        "host",
                        lambda name=name: [
                            Entry(
                                f"hn={name}, o=Grid",
                                objectclass="computer",
                                hn=name,
                            )
                        ],
                    )
                )
                server = LdapServer(backend, clock=clock, tracer=tracer)
                endpoint = TcpEndpoint()
                endpoints.append(endpoint)
                port = endpoint.listen(0, server.handle_connection)
                gris_urls.append(
                    LdapUrl("127.0.0.1", port, DN.of(f"hn={name}, o=Grid"))
                )

            # one GIIS chaining to both
            giis_path = tmp_path / "giis.jsonl"
            logs.insert(0, giis_path)
            giis_tracer = Tracer(clock.now, seed=300, server_id="giis")
            giis_tracer.add_sink(JsonlSink(giis_path, server_id="giis"))
            giis_endpoint = TcpEndpoint()
            endpoints.append(giis_endpoint)
            giis = GiisBackend(
                "o=Grid",
                clock=clock,
                connector=lambda url: giis_endpoint.connect(url.address),
                tracer=giis_tracer,
            )
            for url in gris_urls:
                giis.apply_grrp(
                    GrrpMessage(
                        service_url=str(url),
                        timestamp=clock.now(),
                        valid_until=clock.now() + 300.0,
                        metadata={"suffix": str(url.dn)},
                    )
                )
            giis_server = LdapServer(giis, clock=clock, tracer=giis_tracer)
            giis_port = giis_endpoint.listen(0, giis_server.handle_connection)

            client = LdapClient(giis_endpoint.connect(("127.0.0.1", giis_port)))
            out = client.search(
                "o=Grid", filter="(objectclass=computer)", timeout=10.0
            )
            client.unbind()
            assert sorted(e.first("hn") for e in out) == ["gris-a", "gris-b"]

            def query_records():
                return [
                    r
                    for r in read_records(logs)
                    if r["name"] != "grrp.intake"
                ]

            deadline = time.time() + 5.0
            records = query_records()
            while (
                len({r["server_id"] for r in records}) < 3
                and time.time() < deadline
            ):
                time.sleep(0.05)
                records = query_records()
            assert {r["server_id"] for r in records} == {
                "giis",
                "gris-a",
                "gris-b",
            }
            assert len({r["trace_id"] for r in records}) == 1
            buf = io.StringIO()
            assert render_traces(records, buf) == 1
            assert "(3 servers" in buf.getvalue()
        finally:
            for endpoint in endpoints:
                endpoint.close()


# ---------------------------------------------------------------------------
# grid-info-server flags + config section


class TestServerTracingFlags:
    def _config(self, tmp_path, **tracing):
        config = {
            "suffix": "hn=cfg-host, o=Demo",
            "providers": [
                {
                    "type": "static-host",
                    "hostname": "cfg-host",
                    "cpu_count": 4,
                    "base": "",
                }
            ],
        }
        if tracing:
            config["tracing"] = tracing
        path = tmp_path / "gris.json"
        path.write_text(json.dumps(config))
        return path

    def test_config_tracing_section(self, tmp_path):
        path = self._config(
            tmp_path,
            trace_log="/tmp/spans.jsonl",
            sample_rate=0.25,
            slow_query_ms=100,
            server_id="site-a",
        )
        config = load_config(path)
        assert config.tracing.trace_log == "/tmp/spans.jsonl"
        assert config.tracing.sample_rate == 0.25
        assert config.tracing.slow_query_ms == 100.0
        assert config.tracing.server_id == "site-a"
        assert config.tracing.enabled

    def test_config_defaults_disabled(self, tmp_path):
        config = load_config(self._config(tmp_path))
        assert not config.tracing.enabled
        assert config.tracing.sample_rate == 1.0

    def test_bad_sample_rate_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            load_config(self._config(tmp_path, sample_rate=1.5))

    def test_server_exports_spans_with_default_server_id(self, tmp_path):
        from repro.net.tcp import TcpEndpoint
        from repro.tools.grid_info_server import start_server

        trace_log = tmp_path / "spans.jsonl"
        endpoint, port, registrants, server = start_server(
            str(self._config(tmp_path)),
            port=0,
            monitor=True,
            trace_log=str(trace_log),
            slow_query_ms=0.0001,
        )
        client_ep = TcpEndpoint()
        try:
            client = LdapClient(client_ep.connect(("127.0.0.1", port)))
            out = client.search(
                "hn=cfg-host, o=Demo", filter="(objectclass=computer)"
            )
            assert len(out.entries) == 1

            records = [
                json.loads(line)
                for line in trace_log.read_text().splitlines()
            ]
            assert records, "no spans exported"
            # --server-id defaulted to the listen address
            assert {r["server_id"] for r in records} == {f"127.0.0.1:{port}"}
            assert any(r["name"] == "ldap.search" for r in records)

            # the slow query (threshold ~0) is published under cn=slow
            slow = client.search(
                "cn=slow,cn=monitor", filter="(objectclass=mdsslowtrace)"
            )
            assert len(slow.entries) >= 1
            client.unbind()
        finally:
            client_ep.close()
            endpoint.close()
            server.executor.shutdown()

    def test_cli_flags_parse(self):
        from repro.tools.grid_info_server import build_parser

        args = build_parser().parse_args(
            [
                "--config",
                "x.json",
                "--trace-log",
                "out.jsonl",
                "--trace-sample-rate",
                "0.5",
                "--slow-query-ms",
                "250",
                "--server-id",
                "edge-1",
            ]
        )
        assert args.trace_log == "out.jsonl"
        assert args.trace_sample_rate == 0.5
        assert args.slow_query_ms == 250.0
        assert args.server_id == "edge-1"


# ---------------------------------------------------------------------------
# grid-info-trace CLI edges


class TestTraceCli:
    def test_help_smoke(self, capsys):
        with pytest.raises(SystemExit) as exc:
            trace_main(["--help"])
        assert exc.value.code == 0
        assert "grid-info-trace" in capsys.readouterr().out

    def test_no_inputs_is_usage_error(self):
        assert trace_main([]) == 2

    def test_missing_file_reports_error(self, tmp_path):
        assert trace_main([str(tmp_path / "absent.jsonl")]) == 2

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"v": 99, "trace_id": "x"}) + "\n")
        assert trace_main([str(path)]) == 2

    def test_trace_id_filter_and_limit(self, tmp_path):
        tracer, _ = make_tracer(server_id="s")
        buf_file = tmp_path / "s.jsonl"
        tracer.add_sink(JsonlSink(buf_file, server_id="s"))
        first = tracer.start("op1")
        first.finish()
        tracer.start("op2").finish()
        out = io.StringIO()
        rc = trace_main(
            [str(buf_file), "--trace-id", first.trace_id], out=out
        )
        assert rc == 0
        assert first.trace_id in out.getvalue()
        assert "op2" not in out.getvalue()
        out = io.StringIO()
        assert trace_main([str(buf_file), "--limit", "1"], out=out) == 0
        assert out.getvalue().count("trace ") == 1

    def test_unknown_trace_id_is_not_found(self, tmp_path):
        tracer, _ = make_tracer(server_id="s")
        path = tmp_path / "s.jsonl"
        tracer.add_sink(JsonlSink(path, server_id="s"))
        tracer.start("op").finish()
        assert trace_main([str(path), "--trace-id", "f" * 32]) == 1

    def test_queries_cn_monitor_over_tcp(self, tmp_path):
        from repro.net.tcp import TcpEndpoint
        from repro.tools.grid_info_server import start_server

        config = {
            "suffix": "hn=h, o=Demo",
            "providers": [
                {"type": "static-host", "hostname": "h", "base": ""}
            ],
        }
        path = tmp_path / "gris.json"
        path.write_text(json.dumps(config))
        endpoint, port, _, server = start_server(
            str(path), port=0, monitor=True, slow_query_ms=0.0001,
            server_id="mon-test",
        )
        client_ep = TcpEndpoint()
        try:
            client = LdapClient(client_ep.connect(("127.0.0.1", port)))
            client.search("hn=h, o=Demo", filter="(objectclass=computer)")
            client.unbind()
            out = io.StringIO()
            rc = trace_main(["--server", f"127.0.0.1:{port}"], out=out)
            assert rc == 0
            assert "ldap.search [mon-test]" in out.getvalue()
        finally:
            client_ep.close()
            endpoint.close()
            server.executor.shutdown()


# ---------------------------------------------------------------------------
# span_record shape used by both export paths


class TestSpanRecord:
    def test_explicit_server_id_wins(self):
        tracer, _ = make_tracer(server_id="tracer-id")
        span = tracer.start("op")
        span.finish()
        assert span_record(span)["server_id"] == "tracer-id"
        assert span_record(span, "explicit")["server_id"] == "explicit"
