"""Tests for the higher-level services (§1 scenarios)."""

import random

import pytest

from repro.gris import NetworkPairsProvider, SeriesStore
from repro.grip.failure import FailureDetector
from repro.ldap.entry import Entry
from repro.net.sim import Simulator
from repro.services import (
    AdaptationAgent,
    JobRequest,
    ManagedApplication,
    MonitoringService,
    NamingAuthority,
    ReplicaCatalogProvider,
    ReplicaSelector,
    Superscheduler,
    Troubleshooter,
    TypeAuthority,
    Watch,
    guid,
)
from repro.testbed import GridTestbed


def build_vo(tb, means=(0.2, 2.0, 6.0), cpus=(8, 4, 2)):
    giis = tb.add_giis("giis", "o=Grid", vo_name="VO")
    grises = []
    for i, (mean, cpu) in enumerate(zip(means, cpus)):
        gris = tb.standard_gris(
            f"m{i}", f"hn=m{i}, o=Grid", load_mean=mean, cpu_count=cpu
        )
        tb.register(gris, giis, interval=20.0, ttl=60.0, name=f"m{i}")
        grises.append(gris)
    tb.run(1.0)
    return giis, grises


class TestSuperscheduler:
    def test_selects_least_loaded(self):
        tb = GridTestbed(seed=11)
        giis, _ = build_vo(tb)
        broker = Superscheduler(tb.client("user", giis), "o=Grid")
        choice = broker.select(JobRequest(max_load5=100.0), refresh=False)
        assert choice and choice[0].host == "m0"

    def test_cpu_requirement_filters(self):
        tb = GridTestbed(seed=11)
        giis, _ = build_vo(tb)
        broker = Superscheduler(tb.client("user", giis), "o=Grid")
        candidates = broker.discover(JobRequest(min_cpus=8))
        assert [c.host for c in candidates] == ["m0"]

    def test_load_threshold_excludes(self):
        tb = GridTestbed(seed=11)
        giis, _ = build_vo(tb, means=(9.0, 9.5, 9.9))
        broker = Superscheduler(tb.client("user", giis), "o=Grid")
        assert broker.select(JobRequest(max_load5=1.0), refresh=False) == []

    def test_refresh_consults_authoritative_source(self):
        tb = GridTestbed(seed=11)
        giis, grises = build_vo(tb)

        def dial(url):
            return tb.client("user", url)

        broker = Superscheduler(tb.client("user", giis), "o=Grid", dial=dial)
        choice = broker.select(JobRequest(max_load5=100.0), refresh=True)
        assert choice
        assert choice[0].refreshed
        assert broker.refreshes >= 1

    def test_system_substring(self):
        tb = GridTestbed(seed=11)
        giis, _ = build_vo(tb)
        broker = Superscheduler(tb.client("user", giis), "o=Grid")
        assert broker.discover(JobRequest(system="linux"))
        assert broker.discover(JobRequest(system="irix")) == []

    def test_top_k(self):
        tb = GridTestbed(seed=11)
        giis, _ = build_vo(tb)
        broker = Superscheduler(tb.client("user", giis), "o=Grid")
        two = broker.select(JobRequest(max_load5=100.0), refresh=False, top_k=2)
        assert len(two) == 2


class TestReplicaSelection:
    def build(self, tb):
        giis = tb.add_giis("giis", "o=Grid", vo_name="DataGrid")
        # a data GRIS carrying the replica catalog and network forecasts
        catalog = ReplicaCatalogProvider(
            {
                "lfn://sim/higgs.dat": [
                    ("store-fast", 4 * 1024**3),
                    ("store-slow", 4 * 1024**3),
                ],
                "lfn://sim/only-slow.dat": [("store-slow", 1024**3)],
            }
        )
        bw = SeriesStore(min_samples=1)
        for _ in range(5):
            bw.observe("bw:store-fast->consumer", 100.0)
            bw.observe("bw:store-slow->consumer", 5.0)
        netpairs = NetworkPairsProvider(bw)
        gris = tb.add_gris("data-gris", "o=Grid", [catalog, netpairs])
        tb.register(gris, giis, interval=20.0, ttl=60.0, name="data-gris")
        tb.run(1.0)
        return giis, catalog

    def test_best_replica_by_predicted_transfer(self):
        tb = GridTestbed(seed=13)
        giis, _ = self.build(tb)
        selector = ReplicaSelector(
            tb.client("consumer", giis),
            base="o=Grid",
            network_base="nw=links, o=Grid",
            consumer_host="consumer",
        )
        ranked = selector.select("lfn://sim/higgs.dat")
        assert [c.store_host for c in ranked] == ["store-fast", "store-slow"]
        assert ranked[0].predicted_seconds < ranked[1].predicted_seconds

    def test_single_replica(self):
        tb = GridTestbed(seed=13)
        giis, _ = self.build(tb)
        selector = ReplicaSelector(
            tb.client("consumer", giis), "o=Grid", "nw=links, o=Grid", "consumer"
        )
        best = selector.best("lfn://sim/only-slow.dat")
        assert best.store_host == "store-slow"

    def test_unknown_lfn(self):
        tb = GridTestbed(seed=13)
        giis, _ = self.build(tb)
        selector = ReplicaSelector(
            tb.client("consumer", giis), "o=Grid", "nw=links, o=Grid", "consumer"
        )
        assert selector.best("lfn://sim/nope.dat") is None

    def test_catalog_mutation(self):
        tb = GridTestbed(seed=13)
        giis, catalog = self.build(tb)
        catalog.drop_replica("lfn://sim/higgs.dat", "store-fast")
        tb.run(60.0)  # catalog cache TTL expires
        selector = ReplicaSelector(
            tb.client("consumer", giis), "o=Grid", "nw=links, o=Grid", "consumer"
        )
        ranked = selector.select("lfn://sim/higgs.dat")
        assert [c.store_host for c in ranked] == ["store-slow"]


class TestMonitoringService:
    def test_threshold_alarm_via_subscription(self):
        tb = GridTestbed(seed=17)
        gris = tb.standard_gris("busy", "hn=busy, o=Grid", load_mean=0.1)
        monitor = MonitoringService(tb.sim)
        monitor.add_watch(Watch(attr="load5", threshold=3.0))
        client = tb.client("watcher", gris)
        monitor.attach(client, "hn=busy, o=Grid", "(objectclass=loadaverage)")
        tb.run(30.0)
        assert not [a for a in monitor.alarms if a.kind == "threshold"]
        gris.sensor.set_mean(8.0)  # regime change: machine gets busy
        tb.run(120.0)
        fired = [a for a in monitor.alarms if a.kind == "threshold"]
        assert fired
        assert fired[0].value >= 3.0

    def test_delta_alarm(self):
        tb = GridTestbed(seed=17)
        gris = tb.standard_gris("jumpy", "hn=jumpy, o=Grid", load_mean=0.5)
        monitor = MonitoringService(tb.sim)
        monitor.add_watch(Watch(attr="load5", min_delta=0.75))
        monitor.attach(
            tb.client("w", gris), "hn=jumpy, o=Grid", "(objectclass=loadaverage)"
        )
        gris.sensor.set_mean(9.0)
        tb.run(200.0)
        assert any(a.kind == "delta" for a in monitor.alarms)

    def test_state_and_series(self):
        tb = GridTestbed(seed=17)
        gris = tb.standard_gris("s", "hn=s, o=Grid")
        monitor = MonitoringService(tb.sim)
        monitor.add_watch(Watch(attr="load5", threshold=1e9))
        monitor.attach(tb.client("w", gris), "hn=s, o=Grid", "(objectclass=loadaverage)")
        tb.run(100.0)
        assert monitor.monitored_count() >= 1
        series = monitor.series("perf=loadavg, hn=s, o=Grid", "load5")
        assert len(series) >= 3
        times = [t for t, _ in series]
        assert times == sorted(times)

    def test_detach(self):
        tb = GridTestbed(seed=17)
        gris = tb.standard_gris("s", "hn=s, o=Grid")
        monitor = MonitoringService(tb.sim)
        monitor.attach(tb.client("w", gris), "hn=s, o=Grid")
        tb.run(5.0)
        seen = monitor.updates_received
        monitor.detach_all()
        tb.run(100.0)
        assert monitor.updates_received == seen


class TestTroubleshooter:
    def test_sustained_overload_needs_a_run(self):
        sim = Simulator()
        monitor = MonitoringService(sim)
        ts = Troubleshooter(
            sim, monitor, overload_threshold=4.0, overload_run=3
        )
        entry = Entry("perf=l, hn=x", objectclass="perf", perf="l", load5="9.0")
        monitor.state[str(entry.dn)] = entry
        assert ts.poll() == []  # 1st
        assert ts.poll() == []  # 2nd
        fresh = ts.poll()  # 3rd consecutive
        assert len(fresh) == 1 and fresh[0].kind == "sustained-overload"
        assert ts.poll() == []  # not re-reported

    def test_spike_resets_run(self):
        sim = Simulator()
        monitor = MonitoringService(sim)
        ts = Troubleshooter(sim, monitor, overload_threshold=4.0, overload_run=3)
        hot = Entry("perf=l, hn=x", objectclass="perf", perf="l", load5="9.0")
        cool = Entry("perf=l, hn=x", objectclass="perf", perf="l", load5="0.5")
        monitor.state[str(hot.dn)] = hot
        ts.poll()
        ts.poll()
        monitor.state[str(cool.dn)] = cool
        ts.poll()  # run broken
        monitor.state[str(hot.dn)] = hot
        assert ts.poll() == []  # run restarted at 1

    def test_extended_failure(self):
        sim = Simulator()
        monitor = MonitoringService(sim)
        fd = FailureDetector(sim, timeout=10.0, check_interval=1.0)
        ts = Troubleshooter(sim, monitor, detector=fd, failure_grace=30.0)
        fd.heartbeat("ldap://gone:2135/")
        fd.start()
        sim.run_until(20.0)  # suspected at ~10-11s
        assert ts.poll() == []  # not extended yet
        sim.run_until(50.0)
        fresh = ts.poll()
        assert [d.kind for d in fresh] == ["extended-failure"]
        assert fresh[0].subject == "ldap://gone:2135/"

    def test_recovery_clears_failure(self):
        sim = Simulator()
        monitor = MonitoringService(sim)
        fd = FailureDetector(sim, timeout=10.0, check_interval=1.0)
        ts = Troubleshooter(sim, monitor, detector=fd, failure_grace=30.0)
        fd.heartbeat("p")
        fd.start()
        sim.run_until(20.0)
        # producer comes back and stays healthy (regular heartbeats)
        for t in range(20, 101, 5):
            fd.heartbeat("p")
            sim.run_until(float(t))
        assert ts.poll() == []

    def test_flapping(self):
        sim = Simulator()
        monitor = MonitoringService(sim)
        fd = FailureDetector(sim, timeout=5.0, check_interval=1.0)
        ts = Troubleshooter(
            sim, monitor, detector=fd, flap_window=1000.0, flap_count=4
        )
        fd.start()
        # heartbeat, go silent past timeout, repeat -> flapping
        for cycle in range(3):
            fd.heartbeat("flappy")
            sim.run_until(sim.now() + 20.0)
        assert any(d.kind == "flapping" for d in ts.diagnoses)


class TestAdaptationAgent:
    def make(self, tb):
        giis, grises = build_vo(tb, means=(0.2, 0.3, 0.4))
        app = ManagedApplication("sim1", resource="m2")
        broker = Superscheduler(tb.client("agent", giis), "o=Grid")
        loads = {f"m{i}": 0.5 for i in range(3)}

        agent = AdaptationAgent(
            tb.sim,
            app,
            broker,
            load_of=lambda host: loads.get(host),
            overload=4.0,
            patience=2,
        )
        return giis, grises, app, agent, loads

    def test_no_action_when_calm(self):
        tb = GridTestbed(seed=19)
        _, _, app, agent, loads = self.make(tb)
        assert agent.poll() is None
        assert app.resource == "m2"

    def test_migrates_after_patience(self):
        tb = GridTestbed(seed=19)
        _, _, app, agent, loads = self.make(tb)
        loads["m2"] = 9.0  # current host overloaded
        assert agent.poll() is None  # patience 1/2
        action = agent.poll()
        assert action is not None and action.kind == "migrate"
        assert app.resource != "m2"
        assert app.migrations == 1

    def test_degrades_accuracy_when_no_alternative(self):
        tb = GridTestbed(seed=19)
        giis, grises, app, agent, loads = self.make(tb)
        for g in grises:
            # everyone busy: slam the regime so the directory view agrees
            g.sensor.set_mean(9.0)
            g.sensor.load1 = g.sensor.load5 = g.sensor.load15 = 9.0
        for host in loads:
            loads[host] = 9.0
        agent.poll()
        action = agent.poll()
        assert action is not None and action.kind == "reduce-accuracy"
        assert app.accuracy == 0.5

    def test_restores_accuracy_on_recovery(self):
        tb = GridTestbed(seed=19)
        _, _, app, agent, loads = self.make(tb)
        app.accuracy = 0.25
        loads["m2"] = 0.2
        action = agent.poll()
        assert action.kind == "restore-accuracy"
        assert app.accuracy == 0.5

    def test_application_entry(self):
        app = ManagedApplication("sim1", "m0", accuracy=0.5)
        entry = app.to_entry()
        assert entry.is_a("application")
        assert entry.first("resource") == "m0"
        provider = app.provider()
        assert provider.provide()[0].first("appname") == "sim1"


class TestNaming:
    def test_unique_names(self):
        authority = NamingAuthority("grid.org")
        names = {authority.issue() for _ in range(100)}
        assert len(names) == 100
        assert all(n.startswith("grid.org/") for n in names)

    def test_hierarchical_delegation(self):
        root = NamingAuthority("grid.org")
        vo = root.delegate("vo-a")
        name = vo.issue("host")
        assert name.startswith("grid.org/vo-a/")
        assert root.delegate("vo-a") is vo  # idempotent

    def test_claim_conflicts(self):
        a = NamingAuthority("x")
        assert a.claim("special")
        assert not a.claim("special")

    def test_delegate_collision(self):
        a = NamingAuthority("x")
        a.claim("taken")
        with pytest.raises(ValueError):
            a.delegate("taken")

    def test_guid_uniqueness_and_format(self):
        rng = random.Random(0)
        ids = {guid(rng) for _ in range(1000)}
        assert len(ids) == 1000
        assert all(len(i) == 32 for i in ids)

    def test_type_authority(self):
        ta = TypeAuthority()
        assert ta.register("computer", {"must": ["hn"]})
        assert ta.register("Computer", {"must": ["hn"]})  # identical: ok
        assert not ta.register("computer", {"must": ["cpu"]})  # conflict
        assert ta.resolve("COMPUTER") == {"must": ["hn"]}
        assert ta.resolve("nope") is None
        assert ta.names() == ["computer"]


class TestApplicationMonitoringDirectory:
    """§3: 'another directory, intended to support application
    monitoring, might keep track of running applications.'"""

    def test_running_applications_tracked_through_vo(self):
        tb = GridTestbed(seed=23)
        giis = tb.add_giis("app-dir", "o=Grid", vo_name="AppVO")
        app1 = ManagedApplication("climate-sim", resource="m0")
        app2 = ManagedApplication("mc-generator", resource="m1")
        gris = tb.add_gris(
            "app-host", "o=Grid", [app1.provider(), app2.provider()]
        )
        tb.register(gris, giis, interval=15.0, ttl=45.0, name="apps")
        tb.run(1.0)

        client = tb.client("operator", giis)
        out = client.search("o=Grid", filter="(objectclass=application)")
        assert sorted(e.first("appname") for e in out) == [
            "climate-sim",
            "mc-generator",
        ]

    def test_application_state_changes_visible(self):
        tb = GridTestbed(seed=23)
        giis = tb.add_giis("app-dir", "o=Grid")
        app = ManagedApplication("sim", resource="m0")
        gris = tb.add_gris("app-host", "o=Grid", [app.provider()])
        tb.register(gris, giis, interval=15.0, ttl=45.0)
        tb.run(1.0)
        client = tb.client("operator", giis)

        app.progress = 0.5
        app.migrate_to("m7")
        out = client.search("o=Grid", filter="(appname=sim)")
        e = out.entries[0]
        assert e.first("resource") == "m7"
        assert e.first("progress") == "0.50"

    def test_finished_application_disappears_via_subscription(self):
        tb = GridTestbed(seed=23)
        app = ManagedApplication("sim", resource="m0")
        provider = app.provider()
        gris = tb.add_gris("app-host", "o=Grid", [provider])
        changes = []
        client = tb.client("watcher", gris)
        from repro.ldap.backend import ChangeType
        from repro.ldap.protocol import SearchRequest as SR
        from repro.ldap.dit import Scope as Sc

        client.subscribe(
            SR(base="o=Grid", scope=Sc.SUBTREE),
            lambda e, c: changes.append((e.first("appname"), c)),
        )
        tb.run(10.0)
        gris.backend.remove_provider(provider.name)  # app terminated
        tb.run(10.0)
        assert ("sim", ChangeType.DELETE) in changes
