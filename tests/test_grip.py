"""Tests for GRRP: messages, soft-state registry, registrant, failure detector."""

import pytest
from hypothesis import given, strategies as st

from repro.grip import (
    FailureDetector,
    GrrpError,
    GrrpMessage,
    Inviter,
    NotificationType,
    Registrant,
    SoftStateRegistry,
    registration_dn,
)
from repro.ldap.dn import DN
from repro.net.sim import Simulator


def msg(url="ldap://p1:2135/", ts=0.0, ttl=30.0, kind=NotificationType.REGISTER, **meta):
    return GrrpMessage(
        service_url=url,
        notification_type=kind,
        timestamp=ts,
        valid_until=ts + ttl,
        metadata=dict(meta),
    )


class TestGrrpMessage:
    def test_bytes_roundtrip(self):
        m = msg(suffix="o=Grid", vo="VO-A")
        assert GrrpMessage.from_bytes(m.to_bytes()) == m

    def test_entry_roundtrip(self):
        m = msg(suffix="o=Grid")
        entry = m.to_entry("mds-vo-name=VO-A")
        assert entry.dn.is_within(DN.parse("mds-vo-name=VO-A"))
        assert GrrpMessage.is_registration_entry(entry)
        back = GrrpMessage.from_entry(entry)
        assert back == m

    def test_registration_dn(self):
        dn = registration_dn("ldap://p1:2135/", "o=VO")
        assert dn.rdn.attr == "regid"
        assert dn.parent() == DN.parse("o=VO")

    def test_validity_window(self):
        m = msg(ts=10.0, ttl=5.0)
        assert not m.is_valid_at(9.0)
        assert m.is_valid_at(12.0)
        assert not m.is_valid_at(16.0)

    def test_refreshed_preserves_ttl(self):
        m = msg(ts=0.0, ttl=30.0).refreshed(100.0)
        assert m.timestamp == 100.0
        assert m.valid_until == 130.0

    def test_bad_type_rejected(self):
        with pytest.raises(GrrpError):
            GrrpMessage(service_url="u", notification_type="bogus")

    def test_empty_url_rejected(self):
        with pytest.raises(GrrpError):
            GrrpMessage(service_url="")

    def test_malformed_bytes(self):
        with pytest.raises(GrrpError):
            GrrpMessage.from_bytes(b"not json")

    def test_entry_without_url(self):
        from repro.ldap.entry import Entry

        with pytest.raises(GrrpError):
            GrrpMessage.from_entry(Entry("regid=x", objectclass="giisregistration"))

    @given(st.floats(min_value=0, max_value=1e6), st.floats(min_value=0.1, max_value=1e4))
    def test_ttl_property(self, ts, ttl):
        m = msg(ts=ts, ttl=ttl)
        assert m.ttl == pytest.approx(ttl)


class TestSoftStateRegistry:
    def test_register_and_lookup(self):
        sim = Simulator()
        reg = SoftStateRegistry(sim)
        assert reg.apply(msg(ts=0.0, ttl=30.0))
        assert reg.is_registered("ldap://p1:2135/")
        assert len(reg) == 1

    def test_expiry_without_refresh(self):
        sim = Simulator()
        reg = SoftStateRegistry(sim)
        reg.apply(msg(ts=0.0, ttl=30.0))
        sim.run_until(31.0)
        assert not reg.is_registered("ldap://p1:2135/")
        assert reg.stats_expired == 1

    def test_refresh_extends(self):
        sim = Simulator()
        reg = SoftStateRegistry(sim)
        reg.apply(msg(ts=0.0, ttl=30.0))
        sim.run_until(25.0)
        reg.apply(msg(ts=25.0, ttl=30.0))
        sim.run_until(40.0)
        assert reg.is_registered("ldap://p1:2135/")
        assert reg.lookup("ldap://p1:2135/").refresh_count == 1

    def test_grace_factor(self):
        sim = Simulator()
        reg = SoftStateRegistry(sim, grace=1.0)  # tolerate one missed refresh
        reg.apply(msg(ts=0.0, ttl=30.0))
        sim.run_until(45.0)
        assert reg.is_registered("ldap://p1:2135/")
        sim.run_until(61.0)
        assert not reg.is_registered("ldap://p1:2135/")

    def test_unregister(self):
        sim = Simulator()
        dropped = []
        reg = SoftStateRegistry(sim, on_unregister=dropped.append)
        reg.apply(msg(ts=0.0))
        reg.apply(msg(ts=1.0, ttl=0.0, kind=NotificationType.UNREGISTER))
        assert len(reg) == 0
        assert len(dropped) == 1

    def test_unregister_unknown_is_noop(self):
        sim = Simulator()
        reg = SoftStateRegistry(sim)
        assert not reg.apply(msg(kind=NotificationType.UNREGISTER, ttl=0.0))

    def test_already_expired_message_rejected(self):
        sim = Simulator()
        sim.run_until(100.0)
        reg = SoftStateRegistry(sim)
        assert not reg.apply(msg(ts=0.0, ttl=30.0))
        assert reg.stats_rejected == 1

    def test_membership_policy(self):
        # §2.3: collection administrators control membership.
        sim = Simulator()
        reg = SoftStateRegistry(
            sim, accept=lambda m, ident: m.metadata.get("vo") == "VO-A"
        )
        assert reg.apply(msg(url="u1", vo="VO-A"))
        assert not reg.apply(msg(url="u2", vo="VO-B"))
        assert reg.active_urls() == ["u1"]

    def test_periodic_purge_fires_callbacks(self):
        sim = Simulator()
        expired = []
        reg = SoftStateRegistry(
            sim, purge_interval=5.0, on_expire=expired.append
        )
        reg.apply(msg(ts=0.0, ttl=12.0))
        reg.start()
        sim.run_until(20.0)
        reg.stop()
        assert len(expired) == 1
        # Timely: detected at the first sweep after expiry (t=15).
        assert sim.now() >= 15.0

    def test_on_register_only_for_new(self):
        sim = Simulator()
        registered = []
        reg = SoftStateRegistry(sim, on_register=registered.append)
        reg.apply(msg(ts=0.0))
        reg.apply(msg(ts=1.0))
        assert len(registered) == 1

    def test_invite_is_not_state(self):
        sim = Simulator()
        reg = SoftStateRegistry(sim)
        assert not reg.apply(msg(kind=NotificationType.INVITE))
        assert len(reg) == 0

    def test_start_without_interval(self):
        with pytest.raises(ValueError):
            SoftStateRegistry(Simulator()).start()


class TestRegistrant:
    def make(self, sim, interval=10.0, ttl=30.0, **kw):
        sent = []

        def send(directory, message):
            sent.append((sim.now(), directory, message))

        reg = Registrant(
            sim, "ldap://gris:2135/", send, interval=interval, ttl=ttl, **kw
        )
        return reg, sent

    def test_sustained_stream(self):
        sim = Simulator()
        reg, sent = self.make(sim)
        reg.register_with("dirA")
        sim.run_until(35.0)
        reg.stop()
        times = [t for t, d, m in sent]
        assert times == [0.0, 10.0, 20.0, 30.0]
        assert all(m.notification_type == NotificationType.REGISTER for _, _, m in sent)

    def test_multiple_directories(self):
        sim = Simulator()
        reg, sent = self.make(sim)
        reg.register_with("dirA")
        reg.register_with("dirB")
        sim.run_until(10.0)
        reg.stop()
        assert {d for _, d, _ in sent} == {"dirA", "dirB"}
        assert sorted(reg.directories()) == []  # stopped

    def test_duplicate_register_is_noop(self):
        sim = Simulator()
        reg, sent = self.make(sim)
        reg.register_with("dirA")
        reg.register_with("dirA")
        sim.run_until(0.0)
        assert len(sent) == 1

    def test_deregister_sends_unregister(self):
        sim = Simulator()
        reg, sent = self.make(sim)
        reg.register_with("dirA")
        reg.deregister_from("dirA")
        sim.run_until(50.0)
        kinds = [m.notification_type for _, _, m in sent]
        assert kinds == [NotificationType.REGISTER, NotificationType.UNREGISTER]

    def test_jitter_stays_positive(self):
        sim = Simulator(seed=7)
        reg, sent = self.make(sim, interval=10.0, jitter=9.0)
        reg.rng.seed(3)
        reg.register_with("dirA")
        sim.run_until(200.0)
        reg.stop()
        gaps = [b[0] - a[0] for a, b in zip(sent, sent[1:])]
        assert all(g >= 1.0 for g in gaps)
        assert len(set(round(g, 6) for g in gaps)) > 1  # actually jittered

    def test_invitation_turnaround(self):
        sim = Simulator()
        reg, sent = self.make(sim)
        invite = msg(
            url="ldap://giis:2135/", kind=NotificationType.INVITE, vo="VO-A"
        )
        assert reg.handle_invitation("ldap://giis:2135/", invite)
        sim.run_until(0.0)
        assert sent and sent[0][1] == "ldap://giis:2135/"

    def test_invitation_policy_refusal(self):
        sim = Simulator()
        reg, sent = self.make(
            sim, accept_invitation=lambda d, m: m.metadata.get("vo") == "VO-A"
        )
        bad = msg(url="x", kind=NotificationType.INVITE, vo="VO-B")
        assert not reg.handle_invitation("x", bad)
        assert reg.directories() == []

    def test_non_invite_rejected_by_handler(self):
        sim = Simulator()
        reg, _ = self.make(sim)
        assert not reg.handle_invitation("d", msg())

    def test_bad_params(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Registrant(sim, "u", lambda d, m: None, interval=0)


class TestInviter:
    def test_invite_message_shape(self):
        sim = Simulator()
        sent = []
        inv = Inviter(sim, "ldap://giis:2135/", lambda d, m: sent.append((d, m)))
        inv.invite("ldap://gris:2135/", vo="VO-A")
        (target, message) = sent[0]
        assert target == "ldap://gris:2135/"
        assert message.notification_type == NotificationType.INVITE
        assert message.metadata["directory"] == "ldap://giis:2135/"
        assert message.metadata["vo"] == "VO-A"


class TestEndToEndSoftState:
    def test_registrant_feeds_registry(self):
        """Registrant -> (function transport) -> registry stays alive,
        then expires after the registrant stops."""
        sim = Simulator()
        registry = SoftStateRegistry(sim, purge_interval=5.0)
        registry.start()

        reg = Registrant(
            sim,
            "ldap://gris:2135/",
            lambda d, m: registry.apply(m),
            interval=10.0,
            ttl=25.0,
        )
        reg.register_with("theVO")
        sim.run_until(100.0)
        assert registry.is_registered("ldap://gris:2135/")
        reg.stop()  # silent stop: no unregister; soft state must expire it
        sim.run_until(200.0)
        assert not registry.is_registered("ldap://gris:2135/")
        registry.stop()


class TestFailureDetector:
    def test_silent_producer_suspected(self):
        sim = Simulator()
        fd = FailureDetector(sim, timeout=30.0)
        fd.heartbeat("p1")
        sim.run_until(31.0)
        assert fd.check() == ["p1"]
        assert fd.is_suspect("p1")

    def test_heartbeat_revokes_suspicion(self):
        sim = Simulator()
        fd = FailureDetector(sim, timeout=30.0)
        fd.heartbeat("p1")
        sim.run_until(40.0)
        fd.check()
        fd.heartbeat("p1")
        assert not fd.is_suspect("p1")
        assert fd.false_suspicions() == 1

    def test_unknown_producer_is_suspect(self):
        fd = FailureDetector(Simulator(), timeout=10.0)
        assert fd.is_suspect("never-seen")

    def test_periodic_checking(self):
        sim = Simulator()
        events = []
        fd = FailureDetector(sim, timeout=20.0, on_suspect=events.append)
        fd.heartbeat("p1")
        fd.start()
        sim.run_until(100.0)
        fd.stop()
        assert len(events) == 1
        suspicion = events[0]
        assert suspicion.suspected
        # periodic checks bound detection delay by check_interval
        assert suspicion.when <= 20.0 + fd.check_interval + 1e-9

    def test_detection_latency(self):
        sim = Simulator()
        fd = FailureDetector(sim, timeout=20.0, check_interval=1.0)
        fd.heartbeat("p1")
        fd.start()
        # producer "fails" at t=0 (no more heartbeats)
        sim.run_until(100.0)
        fd.stop()
        latency = fd.detection_latency("p1", failed_at=0.0)
        assert latency is not None
        assert 20.0 <= latency <= 22.0

    def test_alive_listing(self):
        sim = Simulator()
        fd = FailureDetector(sim, timeout=10.0)
        fd.heartbeat("a")
        fd.heartbeat("b")
        sim.run_until(5.0)
        fd.heartbeat("a")
        sim.run_until(12.0)
        assert fd.alive() == ["a"]
        assert set(fd.monitored()) == {"a", "b"}

    def test_forget(self):
        sim = Simulator()
        fd = FailureDetector(sim, timeout=10.0)
        fd.heartbeat("a")
        fd.forget("a")
        assert fd.monitored() == []

    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            FailureDetector(Simulator(), timeout=0)
