"""Tests for the discrete-event engine and link models."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.net.links import LAN, WAN, LinkModel
from repro.net.sim import SimulationError, Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_later(3.0, lambda: order.append("c"))
        sim.call_later(1.0, lambda: order.append("a"))
        sim.call_later(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now() == 3.0

    def test_fifo_among_equal_times(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.call_later(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.call_later(5.0, lambda: fired.append(1))
        sim.run_until(3.0)
        assert not fired and sim.now() == 3.0
        sim.run_until(5.0)
        assert fired and sim.now() == 5.0

    def test_run_until_boundary_inclusive(self):
        sim = Simulator()
        fired = []
        sim.call_later(2.0, lambda: fired.append(1))
        sim.run_until(2.0)
        assert fired

    def test_run_for(self):
        sim = Simulator()
        sim.run_until(10.0)
        sim.run_for(5.0)
        assert sim.now() == 15.0

    def test_cancel(self):
        sim = Simulator()
        fired = []
        h = sim.call_later(1.0, lambda: fired.append(1))
        h.cancel()
        sim.run()
        assert not fired
        assert sim.pending() == 0

    def test_cancel_idempotent(self):
        sim = Simulator()
        h = sim.call_later(1.0, lambda: None)
        h.cancel()
        h.cancel()
        sim.run()

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now()))
            sim.call_later(1.0, lambda: seen.append(("inner", sim.now())))

        sim.call_later(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().call_later(-1.0, lambda: None)

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_runaway_guard(self):
        sim = Simulator()

        def respawn():
            sim.call_later(0.001, respawn)

        sim.call_later(0.0, respawn)
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run(max_events=100)

    def test_determinism_same_seed(self):
        def trace(seed):
            sim = Simulator(seed=seed)
            out = []

            def tick():
                out.append(round(sim.rng.random(), 9))
                if len(out) < 20:
                    sim.call_later(sim.rng.random(), tick)

            sim.call_later(0.0, tick)
            sim.run()
            return out

        assert trace(42) == trace(42)
        assert trace(42) != trace(43)

    def test_call_at(self):
        sim = Simulator()
        fired = []
        sim.call_at(7.5, lambda: fired.append(sim.now()))
        sim.run()
        assert fired == [7.5]

    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=30))
    def test_monotonic_time_property(self, delays):
        sim = Simulator()
        stamps = []
        for d in delays:
            sim.call_later(d, lambda: stamps.append(sim.now()))
        sim.run()
        assert stamps == sorted(stamps)
        assert len(stamps) == len(delays)


class TestLinkModel:
    def test_zero_loss_always_delivers(self):
        rng = random.Random(0)
        link = LinkModel(loss=0.0)
        assert all(link.delivers(rng) for _ in range(100))

    def test_full_loss_never_delivers(self):
        rng = random.Random(0)
        link = LinkModel(loss=1.0)
        assert not any(link.delivers(rng) for _ in range(100))

    def test_loss_rate_statistics(self):
        rng = random.Random(7)
        link = LinkModel(loss=0.3)
        delivered = sum(link.delivers(rng) for _ in range(10000))
        assert 0.65 < delivered / 10000 < 0.75

    def test_down_link(self):
        link = LinkModel(up=False)
        assert not link.delivers(random.Random(0))

    def test_delay_includes_jitter(self):
        rng = random.Random(0)
        link = LinkModel(latency=1.0, jitter=0.5)
        samples = [link.delay(rng) for _ in range(100)]
        assert all(1.0 <= s <= 1.5 for s in samples)
        assert max(samples) > min(samples)

    def test_bandwidth_serialization_delay(self):
        link = LinkModel(latency=0.0, bandwidth=1000.0)
        assert link.delay(random.Random(0), nbytes=500) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(loss=1.5)
        with pytest.raises(ValueError):
            LinkModel(latency=-1)
        with pytest.raises(ValueError):
            LinkModel(bandwidth=0)

    def test_presets_sane(self):
        assert WAN.latency > LAN.latency
        assert WAN.loss > 0

    def test_copy_independent(self):
        a = LinkModel(loss=0.1)
        b = a.copy()
        b.up = False
        assert a.up
