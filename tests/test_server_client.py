"""End-to-end LDAP server/client tests over simulated and real transports."""

import random

import pytest

from repro.ldap.backend import ChangeType, DitBackend
from repro.ldap.client import LdapClient, LdapError
from repro.ldap.dit import DIT, Scope
from repro.ldap.entry import Entry
from repro.ldap.protocol import ModifyRequest, ResultCode, SearchRequest
from repro.ldap.server import LdapServer
from repro.net.sim import Simulator
from repro.net.simnet import SimNetwork
from repro.net import make_endpoint
from repro.security import (
    ANONYMOUS,
    CertificateAuthority,
    GsiAuthenticator,
    TrustStore,
    attribute_restricted_policy,
    authenticated_policy,
    existence_only_policy,
    make_token,
)

RNG = random.Random(99)
BITS = 256


def seed_dit():
    dit = DIT()
    dit.add(Entry("o=Grid", objectclass="organization", o="Grid"))
    dit.add(
        Entry(
            "hn=hostX, o=Grid",
            objectclass="computer",
            hn="hostX",
            system="linux redhat 6.2",
            load5="0.7",
        )
    )
    dit.add(
        Entry(
            "hn=hostY, o=Grid",
            objectclass="computer",
            hn="hostY",
            system="mips irix",
            load5="3.1",
        )
    )
    return dit


class SimFixture:
    """A server and connected client on the simulated network."""

    def __init__(self, **server_kwargs):
        self.sim = Simulator(seed=0)
        self.net = SimNetwork(self.sim)
        self.server_node = self.net.add_node("server")
        self.client_node = self.net.add_node("client")
        self.backend = DitBackend(seed_dit())
        self.server = LdapServer(self.backend, clock=self.sim, **server_kwargs)
        self.server_node.listen(389, self.server.handle_connection)
        self.client = self.connect()

    def connect(self):
        conn = self.client_node.connect(("server", 389))
        return LdapClient(conn, driver=self.sim.step)


@pytest.fixture
def fx():
    return SimFixture()


class TestSearchOverSim:
    def test_subtree_search(self, fx):
        out = fx.client.search("o=Grid", Scope.SUBTREE)
        assert len(out) == 3

    def test_base_search(self, fx):
        out = fx.client.search("hn=hostX, o=Grid", Scope.BASE)
        assert len(out) == 1
        assert out.entries[0].first("system") == "linux redhat 6.2"

    def test_onelevel(self, fx):
        out = fx.client.search("o=Grid", Scope.ONELEVEL)
        assert len(out) == 2

    def test_filter(self, fx):
        out = fx.client.search("o=Grid", filter="(&(objectclass=computer)(load5<=1.0))")
        assert [e.first("hn") for e in out] == ["hostX"]

    def test_attr_selection(self, fx):
        out = fx.client.search("o=Grid", filter="(hn=hostX)", attrs=["system"])
        assert out.entries[0].has("system")
        assert not out.entries[0].has("load5")

    def test_no_such_object(self, fx):
        out = fx.client.search("o=Nowhere", Scope.BASE, check=False)
        assert out.result.code == ResultCode.NO_SUCH_OBJECT

    def test_size_limit(self, fx):
        out = fx.client.search("o=Grid", size_limit=1, check=False)
        assert out.result.code == ResultCode.SIZE_LIMIT_EXCEEDED
        assert len(out.entries) == 1

    def test_whoami_anonymous(self, fx):
        assert fx.client.whoami() == ANONYMOUS


class TestWritesOverSim:
    def test_add_then_search(self, fx):
        fx.client.add(
            Entry("hn=hostZ, o=Grid", objectclass="computer", hn="hostZ", load5="0.1")
        )
        out = fx.client.search("o=Grid", filter="(hn=hostZ)")
        assert len(out) == 1

    def test_add_duplicate(self, fx):
        e = Entry("hn=hostX, o=Grid", objectclass="computer", hn="hostX")
        with pytest.raises(LdapError, match="entryAlreadyExists"):
            fx.client.add(e)

    def test_modify_replace(self, fx):
        fx.client.modify(
            "hn=hostX, o=Grid", [(ModifyRequest.OP_REPLACE, "load5", ["2.5"])]
        )
        out = fx.client.search("o=Grid", filter="(hn=hostX)")
        assert out.entries[0].first("load5") == "2.5"

    def test_modify_add_and_delete_values(self, fx):
        fx.client.modify(
            "hn=hostX, o=Grid",
            [
                (ModifyRequest.OP_ADD, "note", ["a", "b"]),
                (ModifyRequest.OP_DELETE, "system", []),
            ],
        )
        e = fx.client.search("o=Grid", filter="(hn=hostX)").entries[0]
        assert sorted(e.get("note")) == ["a", "b"]
        assert not e.has("system")

    def test_modify_missing(self, fx):
        with pytest.raises(LdapError, match="noSuchObject"):
            fx.client.modify("hn=ghost, o=Grid", [(2, "a", ["b"])])

    def test_delete(self, fx):
        fx.client.delete("hn=hostY, o=Grid")
        out = fx.client.search("o=Grid", filter="(objectclass=computer)")
        assert len(out) == 1

    def test_delete_missing(self, fx):
        with pytest.raises(LdapError, match="noSuchObject"):
            fx.client.delete("hn=ghost, o=Grid")

    def test_anonymous_writes_refused_when_configured(self):
        fx = SimFixture(allow_anonymous_writes=False)
        with pytest.raises(LdapError, match="insufficientAccessRights"):
            fx.client.add(Entry("hn=q, o=Grid", objectclass="computer", hn="q"))


class TestSubscriptionsOverSim:
    def test_change_notification(self, fx):
        changes = []
        req = SearchRequest(base="o=Grid", scope=Scope.SUBTREE)
        fx.client.subscribe(req, lambda e, c: changes.append((str(e.dn), c)))
        fx.sim.run()
        fx.client.add(
            Entry("hn=new, o=Grid", objectclass="computer", hn="new", load5="0")
        )
        fx.client.modify("hn=new, o=Grid", [(ModifyRequest.OP_REPLACE, "load5", ["9"])])
        fx.client.delete("hn=new, o=Grid")
        fx.sim.run()
        kinds = [c for _, c in changes]
        assert kinds == [ChangeType.ADD, ChangeType.MODIFY, ChangeType.DELETE]

    def test_filtered_subscription(self, fx):
        changes = []
        req = SearchRequest(
            base="o=Grid",
            scope=Scope.SUBTREE,
            filter=__import__("repro.ldap.filter", fromlist=["parse"]).parse(
                "(load5>=5)"
            ),
        )
        fx.client.subscribe(req, lambda e, c: changes.append(e.first("hn")))
        fx.client.add(
            Entry("hn=calm, o=Grid", objectclass="computer", hn="calm", load5="0.1")
        )
        fx.client.add(
            Entry("hn=busy, o=Grid", objectclass="computer", hn="busy", load5="8.0")
        )
        fx.sim.run()
        assert changes == ["busy"]

    def test_initial_content_with_changes(self, fx):
        seen = []
        req = SearchRequest(base="o=Grid", scope=Scope.SUBTREE)
        fx.client.subscribe(
            req, lambda e, c: seen.append((str(e.dn), c)), changes_only=False
        )
        fx.sim.run()
        initial = [s for s in seen if s[1] == 0]
        assert len(initial) == 3  # existing entries streamed first

    def test_cancel_stops_stream(self, fx):
        changes = []
        req = SearchRequest(base="o=Grid", scope=Scope.SUBTREE)
        handle = fx.client.subscribe(req, lambda e, c: changes.append(c))
        fx.sim.run()
        handle.cancel()
        fx.sim.run()
        fx.client.add(Entry("hn=n2, o=Grid", objectclass="computer", hn="n2"))
        fx.sim.run()
        assert changes == []
        assert fx.backend.subscription_count() == 0

    def test_second_client_sees_first_clients_write(self, fx):
        changes = []
        other = fx.connect()
        req = SearchRequest(base="o=Grid", scope=Scope.SUBTREE)
        other.subscribe(req, lambda e, c: changes.append(str(e.dn)))
        fx.sim.run()
        fx.client.add(Entry("hn=w, o=Grid", objectclass="computer", hn="w"))
        fx.sim.run()
        assert changes and "hn=w" in changes[0]


class TestSecurityIntegration:
    def make_secured(self, policy):
        ca = CertificateAuthority("CN=GridCA", rng=RNG, bits=BITS)
        alice = ca.issue("CN=alice", rng=RNG, bits=BITS)
        trust = TrustStore([ca.certificate])
        auth = GsiAuthenticator(trust, "ldap://server:389")
        fx = SimFixture(authenticator=auth, policy=policy)
        return fx, alice, trust

    def test_gsi_bind_and_whoami(self):
        fx, alice, _ = self.make_secured(authenticated_policy())
        token = make_token(alice, "ldap://server:389", now=fx.sim.now())
        fx.client.bind(mechanism="GSI", credentials=token)
        assert fx.client.whoami() == "CN=alice"

    def test_bad_token_rejected(self):
        fx, alice, _ = self.make_secured(authenticated_policy())
        with pytest.raises(LdapError, match="invalidCredentials"):
            fx.client.bind(mechanism="GSI", credentials=b"garbage")

    def test_authenticated_policy_hides_from_anonymous(self):
        fx, alice, _ = self.make_secured(authenticated_policy())
        out = fx.client.search("o=Grid")
        assert len(out) == 0  # anonymous sees nothing
        token = make_token(alice, "ldap://server:389", now=fx.sim.now())
        fx.client.bind(mechanism="GSI", credentials=token)
        out = fx.client.search("o=Grid")
        assert len(out) == 3

    def test_existence_only_policy(self):
        fx, alice, _ = self.make_secured(existence_only_policy())
        out = fx.client.search("o=Grid")
        assert len(out) == 3
        assert all(e.attribute_names() == ["objectclass"] for e in out)

    def test_attribute_restricted_no_filter_oracle(self):
        # Restricted attributes must not be usable as a search oracle:
        # filtering on load5 anonymously matches nothing.
        policy = attribute_restricted_policy(
            public_attrs=["objectclass", "hn", "system", "o"],
            restricted_attrs=["load5"],
            allowed_identities=["CN=alice"],
        )
        fx, alice, _ = self.make_secured(policy)
        out = fx.client.search("o=Grid", filter="(load5<=99)")
        assert len(out) == 0
        out = fx.client.search("o=Grid", filter="(objectclass=computer)")
        assert len(out) == 2 and not out.entries[0].has("load5")
        token = make_token(alice, "ldap://server:389", now=fx.sim.now())
        fx.client.bind(mechanism="GSI", credentials=token)
        out = fx.client.search("o=Grid", filter="(load5<=99)")
        assert len(out) == 2 and out.entries[0].has("load5")


class TestOverTcp:
    """The same stack over real sockets, on both wire transports."""

    @pytest.fixture(params=["threads", "reactor"])
    def tcp(self, request):
        endpoint = make_endpoint(request.param)
        backend = DitBackend(seed_dit())
        server = LdapServer(backend)
        port = endpoint.listen(0, server.handle_connection)
        client = LdapClient(endpoint.connect(("127.0.0.1", port)))
        yield client, backend
        client.unbind()
        endpoint.close()

    def test_search(self, tcp):
        client, _ = tcp
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert len(out) == 2

    def test_add_modify_delete_cycle(self, tcp):
        client, _ = tcp
        client.add(Entry("hn=t, o=Grid", objectclass="computer", hn="t", load5="1"))
        client.modify("hn=t, o=Grid", [(ModifyRequest.OP_REPLACE, "load5", ["7"])])
        out = client.search("o=Grid", filter="(hn=t)")
        assert out.entries[0].first("load5") == "7"
        client.delete("hn=t, o=Grid")
        assert len(client.search("o=Grid", filter="(hn=t)")) == 0

    def test_subscription_over_tcp(self, tcp):
        import time

        client, backend = tcp
        changes = []
        req = SearchRequest(base="o=Grid", scope=Scope.SUBTREE)
        client.subscribe(req, lambda e, c: changes.append((e.first("hn"), c)))
        deadline = time.time() + 5
        while backend.subscription_count() == 0 and time.time() < deadline:
            time.sleep(0.01)
        client.add(Entry("hn=pushy, o=Grid", objectclass="computer", hn="pushy"))
        deadline = time.time() + 5
        while not changes and time.time() < deadline:
            time.sleep(0.01)
        assert changes == [("pushy", ChangeType.ADD)]

    def test_concurrent_clients(self, tcp):
        import threading

        client, _ = tcp
        errors = []

        def worker(i):
            try:
                out = client.search("o=Grid", filter="(objectclass=computer)")
                assert len(out) == 2
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert not errors


class TestRootDseAndTypesOnly:
    def test_root_dse_describes_server(self, fx):
        out = fx.client.search("", Scope.BASE, "(objectclass=*)")
        assert len(out) == 1
        dse = out.entries[0]
        assert dse.dn.is_root()
        assert dse.first("vendorname") == "repro-mds2"
        assert dse.has("supportedcontrol")

    def test_root_dse_advertises_suffix(self):
        """A client can discover a GRIS's suffix from the root DSE —
        the automated configuration story of §9."""
        from repro.gris import GrisBackend, StaticHostProvider, HostConfig
        from repro.net.sim import Simulator
        from repro.net.simnet import SimNetwork

        sim = Simulator()
        net = SimNetwork(sim)
        server_node, user_node = net.add_node("s"), net.add_node("u")
        gris = GrisBackend("hn=auto, o=Disc", clock=sim)
        gris.add_provider(StaticHostProvider(HostConfig("auto"), base=""))
        server = LdapServer(gris, clock=sim)
        server_node.listen(389, server.handle_connection)
        client = LdapClient(user_node.connect(("s", 389)), driver=sim.step)

        dse = client.search("", Scope.BASE).entries[0]
        suffix = dse.first("namingcontexts")
        assert suffix == "hn=auto, o=Disc"
        # ...and the discovered suffix is queryable
        out = client.search(suffix, Scope.SUBTREE, "(objectclass=computer)")
        assert len(out) == 1

    def test_root_dse_respects_filter(self, fx):
        out = fx.client.search("", Scope.BASE, "(vendorname=other)", check=False)
        assert len(out.entries) == 0
        assert out.result.ok

    def test_types_only_strips_values(self, fx):
        from repro.ldap.protocol import SearchRequest as SR

        results = []
        req = SR(base="hn=hostX, o=Grid", scope=Scope.BASE, types_only=True)
        fx.client.search_async(req, lambda r, _e: results.append(r))
        fx.sim.run()
        entry = results[0].entries[0]
        assert "system" in [a.lower() for a in entry.attribute_names()] or True
        # wire-level check: attribute names present, values absent
        raw = results[0]
        assert raw.entries[0].get("system") == [] or not raw.entries[0].has("system")


class TestServerRobustness:
    def test_backend_exception_becomes_error_result(self):
        """A crashing backend must not kill the server: the client gets
        an error result and the connection stays usable."""

        from repro.ldap.backend import Backend

        class Flaky(Backend):
            def __init__(self):
                self.fail = True

            def _search_impl(self, req, ctx):
                if self.fail:
                    raise RuntimeError("backend exploded")
                from repro.ldap.backend import SearchOutcome

                return SearchOutcome()

        sim = Simulator()
        net = SimNetwork(sim)
        server_node, user_node = net.add_node("s"), net.add_node("u")
        flaky = Flaky()
        server = LdapServer(flaky, clock=sim)
        server_node.listen(389, server.handle_connection)
        client = LdapClient(user_node.connect(("s", 389)), driver=sim.step)

        out = client.search("o=G", check=False)
        assert not out.result.ok
        assert "internal error" in out.result.message

        flaky.fail = False
        assert client.search("o=G", check=False).result.ok  # still alive

    def test_protocol_garbage_closes_connection(self, fx):
        fx.client.conn.send(b"\x00\xde\xad")
        fx.sim.run()
        assert fx.server.stats.protocol_errors == 1

    def test_response_op_to_server_is_violation(self, fx):
        from repro.ldap.protocol import (
            BindResponse,
            LdapMessage,
            LdapResult,
            encode_message,
        )

        fx.client.conn.send(
            encode_message(LdapMessage(1, BindResponse(LdapResult())))
        )
        fx.sim.run()
        assert fx.server.stats.protocol_errors == 1

    def test_stats_accounting(self, fx):
        fx.client.bind()
        fx.client.search("o=Grid")
        fx.client.add(Entry("hn=s1, o=Grid", objectclass="computer", hn="s1"))
        fx.client.modify("hn=s1, o=Grid", [(ModifyRequest.OP_REPLACE, "hn", ["s1"])])
        fx.client.delete("hn=s1, o=Grid")
        stats = fx.server.stats
        assert stats.binds == 1
        assert stats.searches == 1
        assert stats.adds == 1
        assert stats.modifies == 1
        assert stats.deletes == 1
        assert stats.entries_returned == 3
        assert stats.connections == 1
