"""Tests for the MDS-1, multicast, and Bloom-filter baselines."""

import pytest

from repro.baselines import (
    BloomFilter,
    CentralDirectory,
    Mds1Pusher,
    MulticastDiscoveryClient,
    MulticastResponder,
    SummaryIndex,
)
from repro.gris import FunctionProvider, HostConfig, StaticHostProvider
from repro.ldap.client import LdapClient
from repro.ldap.entry import Entry
from repro.ldap.filter import parse as parse_filter
from repro.net.links import LinkModel
from repro.net.sim import Simulator
from repro.net.simnet import SimNetwork
from repro.testbed import GridTestbed


class TestBloomFilter:
    def test_membership(self):
        bf = BloomFilter(bits=256, hashes=3)
        bf.add(b"hello")
        assert b"hello" in bf
        assert b"world" not in bf

    def test_no_false_negatives(self):
        bf = BloomFilter(bits=4096, hashes=4)
        items = [f"item-{i}".encode() for i in range(200)]
        for item in items:
            bf.add(item)
        assert all(item in bf for item in items)

    def test_false_positive_rate_estimate(self):
        bf = BloomFilter(bits=1024, hashes=4)
        for i in range(100):
            bf.add(str(i).encode())
        rate = bf.false_positive_rate()
        assert 0.0 < rate < 0.2
        # empirical check against fresh items
        hits = sum(1 for i in range(1000, 3000) if str(i).encode() in bf)
        assert hits / 2000 < rate * 3 + 0.02

    def test_merge(self):
        a = BloomFilter(bits=256, hashes=3)
        b = BloomFilter(bits=256, hashes=3)
        a.add(b"x")
        b.add(b"y")
        a.merge(b)
        assert b"x" in a and b"y" in a

    def test_merge_shape_mismatch(self):
        with pytest.raises(ValueError):
            BloomFilter(256, 3).merge(BloomFilter(512, 3))

    def test_bad_params(self):
        with pytest.raises(ValueError):
            BloomFilter(bits=4)


class TestSummaryIndex:
    def entries(self, host, system):
        return [
            Entry(f"hn={host}", objectclass="computer", hn=host, system=system)
        ]

    def test_pruning(self):
        idx = SummaryIndex()
        idx.update_child("c1", self.entries("a", "linux"))
        idx.update_child("c2", self.entries("b", "irix"))
        got = idx.candidates(parse_filter("(system=linux)"))
        assert got == ["c1"]

    def test_conjunction(self):
        idx = SummaryIndex()
        idx.update_child("c1", self.entries("a", "linux"))
        got = idx.candidates(parse_filter("(&(system=linux)(hn=a))"))
        assert got == ["c1"]
        got = idx.candidates(parse_filter("(&(system=linux)(hn=zz))"))
        assert got == []

    def test_non_equality_filters_cannot_prune(self):
        idx = SummaryIndex()
        idx.update_child("c1", self.entries("a", "linux"))
        idx.update_child("c2", self.entries("b", "irix"))
        assert idx.candidates(parse_filter("(load5>=2)")) == ["c1", "c2"]
        assert idx.candidates(parse_filter("(system=*nux*)")) == ["c1", "c2"]

    def test_drop_child(self):
        idx = SummaryIndex()
        idx.update_child("c1", self.entries("a", "linux"))
        idx.drop_child("c1")
        assert idx.children() == []

    def test_summary_size_accounting(self):
        idx = SummaryIndex(bits=2048)
        idx.update_child("c1", self.entries("a", "linux"))
        assert idx.summary_bytes() == 2048 // 8


class TestMds1Baseline:
    def build(self, tb: GridTestbed, interval=30.0, n=2):
        central_node = tb.host("central")
        central = CentralDirectory(tb.sim)
        central_node.listen(389, central.server.handle_connection)
        pushers = []
        for i in range(n):
            host = tb.host(f"p{i}")
            provider = StaticHostProvider(HostConfig(f"p{i}"), base=f"hn=p{i}")
            conn = host.connect(("central", 389))
            pusher = Mds1Pusher(
                tb.sim,
                LdapClient(conn),
                "o=Grid",
                [provider],
                interval=interval,
            )
            pusher.start()
            pushers.append(pusher)
        tb.run(1.0)
        return central, pushers

    def test_pushed_data_queryable(self):
        tb = GridTestbed(seed=23)
        central, _ = self.build(tb)
        client = tb.client("user", __import__("repro.ldap.url", fromlist=["LdapUrl"]).LdapUrl("central", 389))
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert sorted(e.first("hn") for e in out) == ["p0", "p1"]

    def test_periodic_pushes(self):
        tb = GridTestbed(seed=23)
        central, pushers = self.build(tb, interval=10.0)
        tb.run(35.0)
        assert all(p.pushes == 4 for p in pushers)  # t=0,10,20,30

    def test_staleness_bounded_by_interval(self):
        tb = GridTestbed(seed=23)
        loads = {"value": "1.0"}
        central = CentralDirectory(tb.sim)
        tb.host("central").listen(389, central.server.handle_connection)
        provider = FunctionProvider(
            "dyn",
            lambda: [
                Entry("perf=l, hn=p", objectclass="perf", perf="l", load5=loads["value"])
            ],
        )
        conn = tb.host("p").connect(("central", 389))
        pusher = Mds1Pusher(tb.sim, LdapClient(conn), "o=Grid", [provider], interval=30.0)
        pusher.start()
        tb.run(1.0)
        loads["value"] = "9.0"  # reality changes right after a push
        tb.run(10.0)
        from repro.ldap.url import LdapUrl

        client = tb.client("user", LdapUrl("central", 389))
        out = client.search("o=Grid", filter="(objectclass=perf)")
        assert out.entries[0].first("load5") == "1.0"  # stale until next push
        tb.run(25.0)  # next push at t=31
        out = client.search("o=Grid", filter="(objectclass=perf)")
        assert out.entries[0].first("load5") == "9.0"

    def test_vanished_entries_deleted(self):
        tb = GridTestbed(seed=23)
        entries = {
            "a": Entry("hn=a", objectclass="computer", hn="a"),
            "b": Entry("hn=b", objectclass="computer", hn="b"),
        }
        central = CentralDirectory(tb.sim)
        tb.host("central").listen(389, central.server.handle_connection)
        provider = FunctionProvider("p", lambda: list(entries.values()))
        conn = tb.host("p").connect(("central", 389))
        pusher = Mds1Pusher(tb.sim, LdapClient(conn), "o=Grid", [provider], interval=10.0)
        pusher.start()
        tb.run(1.0)
        del entries["b"]
        tb.run(10.5)
        from repro.ldap.url import LdapUrl

        client = tb.client("user", LdapUrl("central", 389))
        out = client.search("o=Grid", filter="(objectclass=computer)")
        assert [e.first("hn") for e in out] == ["a"]

    def test_update_traffic_flows_without_queries(self):
        tb = GridTestbed(seed=23)
        central, pushers = self.build(tb, interval=5.0)
        before = tb.net.stats.messages
        tb.run(60.0)  # nobody queries
        assert tb.net.stats.messages - before >= 20  # pushes keep flowing


class TestMulticastDiscovery:
    def build(self):
        sim = Simulator(seed=31)
        net = SimNetwork(sim, default_link=LinkModel(latency=0.01))
        # site A: client + 2 providers; site B: 1 provider (same VO!)
        client_node = net.add_node("client", site="A")
        providers = []
        for host, site, system in (
            ("pa1", "A", "linux"),
            ("pa2", "A", "irix"),
            ("pb1", "B", "linux"),
        ):
            node = net.add_node(host, site=site)
            entries = [
                Entry(f"hn={host}", objectclass="computer", hn=host, system=system)
            ]
            providers.append(MulticastResponder(node, lambda e=entries: e))
        client = MulticastDiscoveryClient(client_node, sim)
        return sim, net, client, providers

    def test_site_scope_finds_local_only(self):
        sim, net, client, providers = self.build()
        targeted, results = client.discover("(objectclass=computer)", timeout=1.0)
        sim.run_until(2.0)
        found = {e.first("hn") for e in results()}
        assert found == {"pa1", "pa2"}  # pb1 invisible across sites (§11.2)
        assert targeted == 2

    def test_global_scope_reaches_everyone(self):
        sim, net, client, providers = self.build()
        targeted, results = client.discover(
            "(objectclass=computer)", timeout=1.0, scope="global"
        )
        sim.run_until(2.0)
        assert {e.first("hn") for e in results()} == {"pa1", "pa2", "pb1"}
        assert targeted == 3

    def test_filter_applied_at_responder(self):
        sim, net, client, providers = self.build()
        _, results = client.discover("(system=linux)", timeout=1.0)
        sim.run_until(2.0)
        assert {e.first("hn") for e in results()} == {"pa1"}
        # non-matching responders stay silent
        assert providers[1].replies_sent == 0

    def test_every_responder_pays_for_every_query(self):
        sim, net, client, providers = self.build()
        for _ in range(10):
            client.discover("(hn=pa1)", timeout=0.5, scope="global")
        sim.run_until(10.0)
        assert all(p.queries_seen == 10 for p in providers)

    def test_on_done_callback(self):
        sim, net, client, providers = self.build()
        got = []
        client.discover(
            "(objectclass=computer)", timeout=1.0, on_done=lambda es: got.append(es)
        )
        sim.run_until(2.0)
        assert len(got) == 1 and len(got[0]) == 2

    def test_responder_stop(self):
        sim, net, client, providers = self.build()
        providers[0].stop()
        _, results = client.discover("(objectclass=computer)", timeout=1.0)
        sim.run_until(2.0)
        assert {e.first("hn") for e in results()} == {"pa2"}
