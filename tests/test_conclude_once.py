"""Regression tests for the conclude-once sweep (PR 6 satellites).

Every pending client operation must be concluded by exactly one of its
contenders — server reply, local deadline expiry, or connection-death
``_fail_all`` — no matter how they interleave.  The race tests here
drive the exact interleaving deterministically by hooking the client's
lock, so they don't rely on sleeps or thread timing.
"""

import threading

import pytest

from repro.ldap.client import LdapClient
from repro.ldap.protocol import (
    LdapMessage,
    LdapResult,
    ResultCode,
    SearchRequest,
    SearchResultDone,
    encode_message,
)
from repro.net import make_endpoint
from repro.net.clock import Clock, TimerHandle
from repro.obs.metrics import MetricsRegistry

import time


def wait_for(predicate, timeout=5.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class FakeConn:
    """Connection double: collects sent frames, delivers on demand."""

    def __init__(self):
        self.sent = []
        self.closed = False
        self.receiver = None
        self.close_handler = None
        self.peer = ("fake", 0)
        self.local = ("fake", 1)

    def send(self, message: bytes) -> None:
        self.sent.append(message)

    def set_receiver(self, callback) -> None:
        self.receiver = callback

    def set_close_handler(self, callback) -> None:
        self.close_handler = callback

    def close(self) -> None:
        self.closed = True


class ManualClock(Clock):
    """Records timers; the test decides when (and whether) they fire."""

    def __init__(self):
        self.timers = []

    def now(self) -> float:
        return 0.0

    def call_later(self, delay, fn) -> TimerHandle:
        handle = TimerHandle(lambda: None)
        self.timers.append((delay, fn, handle))
        return handle


class TriggerLock:
    """A lock that fires a hook right after its Nth release.

    This pins down a cross-thread interleaving deterministically: the
    hook runs at the exact moment the code under test has just dropped
    the lock, exactly where a rival thread could be scheduled.
    """

    def __init__(self, fire_after: int):
        self._lock = threading.Lock()
        self._releases = 0
        self._fire_after = fire_after
        self.hook = None

    def __enter__(self):
        self._lock.acquire()
        return self

    def __exit__(self, *exc):
        self._lock.release()
        self._releases += 1
        if self._releases == self._fire_after and self.hook is not None:
            hook, self.hook = self.hook, None
            hook()
        return False


def _done_frame(msg_id: int, code: int = ResultCode.SUCCESS) -> bytes:
    return encode_message(
        LdapMessage(msg_id, SearchResultDone(LdapResult(code)))
    )


class TestDeadlineVsReplyRace:
    def test_reply_racing_expiry_delivers_exactly_one_on_done(self):
        """A deadline expiring mid-reply must not double-complete.

        The hooked lock schedules the expiry callback at the first
        release inside ``_on_message`` — the precise window where the
        old code had done a ``get`` but not yet its (result-ignored)
        ``pop``, so both paths called ``_complete``.  Conclude-once
        code delivers exactly one outcome: the reply's, since it pops
        first.
        """
        conn = FakeConn()
        clock = ManualClock()
        client = LdapClient(conn, clock=clock)
        # Releases 1 and 2 are _allocate and _arm_deadline; release 3
        # is the first lock exit inside _on_message.
        lock = TriggerLock(fire_after=3)
        client._lock = lock

        calls = []
        msg_id = client.search_async(
            SearchRequest(base="o=Grid"),
            lambda result, error: calls.append((result, error)),
            deadline=5.0,
        )
        assert len(clock.timers) == 1
        _delay, expire, _handle = clock.timers[0]
        lock.hook = expire  # the deadline fires in the race window

        client._on_message(_done_frame(msg_id))

        assert len(calls) == 1, "pending completed more than once"
        result, error = calls[0]
        assert error is None and result.result.ok  # the reply won

    def test_expiry_then_late_reply_is_dropped(self):
        conn = FakeConn()
        clock = ManualClock()
        client = LdapClient(conn, clock=clock)

        calls = []
        msg_id = client.search_async(
            SearchRequest(base="o=Grid"),
            lambda result, error: calls.append((result, error)),
            deadline=5.0,
        )
        _delay, expire, _handle = clock.timers[0]
        expire()
        client._on_message(_done_frame(msg_id))  # server answered too late

        assert len(calls) == 1
        result, error = calls[0]
        assert error is not None
        assert result.result.code == ResultCode.TIME_LIMIT_EXCEEDED

    def test_disconnect_then_late_reply_is_dropped(self):
        conn = FakeConn()
        client = LdapClient(conn)

        calls = []
        msg_id = client.search_async(
            SearchRequest(base="o=Grid"),
            lambda result, error: calls.append((result, error)),
        )
        conn.close_handler()  # transport died: _fail_all concludes
        client._on_message(_done_frame(msg_id))  # stale buffered reply

        assert len(calls) == 1
        result, error = calls[0]
        assert error is not None and not result.result.ok

    def test_deadline_armed_after_conclusion_cancels_timer(self):
        """_arm_deadline finding the pending gone must not leave a
        live timer ticking toward a no-op."""
        conn = FakeConn()
        clock = ManualClock()
        client = LdapClient(conn, clock=clock)
        client._pending.clear()  # simulate: concluded before arming
        client._arm_deadline(99, 5.0)
        assert clock.timers[0][2].cancelled


class TestSubscriptionHandleConcludes:
    def test_server_done_deactivates_handle(self):
        conn = FakeConn()
        client = LdapClient(conn)
        handle = client.subscribe(
            SearchRequest(base="o=Grid"), lambda entry, change: None
        )
        assert handle.active
        frames_before = len(conn.sent)

        client._on_message(_done_frame(handle._msg_id))
        assert not handle.active
        # cancel() after the server concluded must not Abandon: the
        # message id is dead and could be reused by a future operation.
        handle.cancel()
        assert len(conn.sent) == frames_before

    def test_disconnect_deactivates_handle(self):
        conn = FakeConn()
        client = LdapClient(conn)
        handle = client.subscribe(
            SearchRequest(base="o=Grid"), lambda entry, change: None
        )
        conn.close_handler()
        assert not handle.active
        frames_before = len(conn.sent)
        handle.cancel()
        assert len(conn.sent) == frames_before

    def test_local_cancel_still_abandons(self):
        conn = FakeConn()
        client = LdapClient(conn)
        handle = client.subscribe(
            SearchRequest(base="o=Grid"), lambda entry, change: None
        )
        frames_before = len(conn.sent)
        handle.cancel()
        assert not handle.active
        assert len(conn.sent) == frames_before + 1  # the Abandon


@pytest.mark.parametrize("transport", ["threads", "reactor"])
class TestUdpCloseVsSend:
    def test_send_after_close_is_noop(self, transport):
        ep = make_endpoint(transport)
        ep.send_datagram(("127.0.0.1", 9), b"x")  # lazily creates socket
        assert ep._udp_send is not None
        ep.close()
        assert ep._udp_send is None
        # A late sender must neither crash nor resurrect the socket.
        ep.send_datagram(("127.0.0.1", 9), b"y")
        assert ep._udp_send is None

    def test_concurrent_senders_racing_close(self, transport):
        ep = make_endpoint(transport)
        errors = []
        stop = threading.Event()

        def spam():
            while not stop.is_set():
                try:
                    ep.send_datagram(("127.0.0.1", 9), b"spam")
                except Exception as exc:  # noqa: BLE001 - the regression
                    errors.append(exc)

        threads = [threading.Thread(target=spam) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        ep.close()
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        assert errors == []
        assert ep._udp_send is None


@pytest.mark.parametrize("transport", ["threads", "reactor"])
class TestAcceptLoopRobustness:
    def test_handler_error_does_not_kill_listener(self, transport):
        metrics = MetricsRegistry()
        ep = make_endpoint(transport, metrics=metrics)
        accepted = []

        def handler(conn):
            accepted.append(conn)
            if len(accepted) == 1:
                raise RuntimeError("bad handshake")
            conn.set_receiver(lambda m: conn.send(b"ok:" + m))

        port = ep.listen(0, handler)
        first = ep.connect(("127.0.0.1", port))
        assert wait_for(
            lambda: metrics.counter("tcp.accept.handler_errors").value == 1
        )
        # The failed handler's connection was dropped server-side...
        assert wait_for(lambda: accepted and accepted[0].closed)
        # ...but the listener survived and serves the next client.
        second = ep.connect(("127.0.0.1", port))
        got = []
        second.set_receiver(got.append)
        second.send(b"hi")
        assert wait_for(lambda: got == [b"ok:hi"])
        first.close()
        second.close()
        ep.close()
