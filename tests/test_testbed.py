"""Tests for the testbed: metrics, workloads, deployment helpers."""

import math
import random

import pytest

from repro.net.sim import Simulator
from repro.testbed import (
    ChurnProcess,
    GridTestbed,
    LatencyTimer,
    QueryMix,
    Series,
    StalenessProbe,
    fmt_table,
    poisson_arrivals,
)
from repro.ldap.entry import Entry


class TestSeries:
    def test_stats(self):
        s = Series("x")
        for v in [1.0, 2.0, 3.0, 4.0]:
            s.add(v)
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == 2.5
        assert s.percentile(0) == 1.0
        assert s.percentile(100) == 4.0
        assert abs(s.stddev - 1.2909944) < 1e-6

    def test_empty(self):
        s = Series()
        assert math.isnan(s.mean)
        assert math.isnan(s.median)
        assert s.stddev == 0.0

    def test_single(self):
        s = Series()
        s.add(5.0)
        assert s.mean == s.median == 5.0
        assert s.stddev == 0.0

    def test_percentile_interpolates(self):
        s = Series(values=[0.0, 10.0])
        assert s.percentile(50) == 5.0


class TestLatencyTimer:
    def test_measures_virtual_time(self):
        sim = Simulator()
        timer = LatencyTimer(sim)
        with timer:
            sim.run_until(3.5)
        assert timer.series.values == [3.5]

    def test_multiple_measurements(self):
        sim = Simulator()
        timer = LatencyTimer(sim)
        for d in (1.0, 2.0):
            with timer:
                sim.run_for(d)
        assert timer.series.values == [1.0, 2.0]


class TestStalenessProbe:
    def test_observes_stamped_entries(self):
        sim = Simulator()
        sim.run_until(100.0)
        probe = StalenessProbe(sim)
        e = Entry("cn=x", cn="x").stamp(now=90.0)
        assert probe.observe_entry(e) == pytest.approx(10.0)

    def test_unstamped_ignored(self):
        probe = StalenessProbe(Simulator())
        assert probe.observe_entry(Entry("cn=x", cn="x")) is None
        assert probe.series.count == 0

    def test_batch(self):
        sim = Simulator()
        sim.run_until(10.0)
        probe = StalenessProbe(sim)
        probe.observe_entries([Entry("cn=a", cn="a").stamp(now=5.0)] * 3)
        assert probe.series.count == 3


class TestFmtTable:
    def test_alignment_and_floats(self):
        text = fmt_table(["name", "value"], [("a", 1.23456), ("bb", 10)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.235" in text  # 4 significant digits
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_wide_cells_grow_columns(self):
        text = fmt_table(["h"], [("a-very-long-cell",)])
        assert "a-very-long-cell" in text


class TestQueryMix:
    def test_deterministic_with_seed(self):
        def queries(seed):
            mix = QueryMix(random.Random(seed), ["a", "b", "c"], base="o=G")
            return [str(mix.next_query().filter) for _ in range(20)]

        assert queries(5) == queries(5)
        assert queries(5) != queries(6)

    def test_query_kinds(self):
        mix = QueryMix(random.Random(0), ["h1"], base="o=G")
        assert "(hn=h1)" == str(mix.lookup().filter)
        assert "objectclass" in str(mix.inventory().filter)
        broker = str(mix.broker_query().filter)
        assert "cpucount" in broker or "load5" in broker

    def test_base_propagates(self):
        mix = QueryMix(random.Random(0), ["h1"], base="o=VO1")
        assert mix.next_query().base == "o=VO1"


class TestPoissonArrivals:
    def test_rate_approximately_honored(self):
        sim = Simulator(seed=3)
        count = {"n": 0}
        poisson_arrivals(
            sim, rate=2.0, action=lambda: count.__setitem__("n", count["n"] + 1),
            rng=random.Random(3), until=500.0
        )
        sim.run_until(500.0)
        assert 800 < count["n"] < 1200  # ~1000 expected

    def test_stop(self):
        sim = Simulator(seed=3)
        count = {"n": 0}
        stop = poisson_arrivals(
            sim, rate=10.0, action=lambda: count.__setitem__("n", count["n"] + 1),
            rng=random.Random(3)
        )
        sim.run_until(10.0)
        seen = count["n"]
        stop()
        sim.run_until(100.0)
        assert count["n"] == seen


class TestChurn:
    def test_joins_and_leaves_happen(self):
        tb = GridTestbed(seed=8)
        giis = tb.add_giis("giis", "o=Grid")
        pairs = []
        for i in range(4):
            gris = tb.standard_gris(f"c{i}", f"hn=c{i}, o=Grid")
            registrant = tb.register(gris, giis, interval=10.0, ttl=30.0)
            pairs.append((registrant, str(giis.url)))
        churn = ChurnProcess(
            tb.sim, pairs, random.Random(8), interval=10.0
        )
        churn.start()
        tb.run(500.0)
        churn.stop()
        assert churn.joins > 0 and churn.leaves > 0
        # registry reflects only currently-registered providers (+ ttl lag)
        registered_now = sum(
            1 for r, d in pairs if d in r.directories()
        )
        assert 0 <= len(giis.backend.registry) <= 4


class TestDeploymentHelpers:
    def test_duplicate_giis_port_rejected(self):
        tb = GridTestbed(seed=1)
        tb.add_giis("g", "o=A")
        with pytest.raises(Exception):
            tb.add_giis("g", "o=B")

    def test_host_reuse_returns_same_node(self):
        tb = GridTestbed(seed=1)
        a = tb.host("x", site="s1")
        b = tb.host("x")
        assert a is b and a.site == "s1"

    def test_register_unknown_transport(self):
        tb = GridTestbed(seed=1)
        giis = tb.add_giis("g", "o=A")
        gris = tb.standard_gris("r", "hn=r, o=A")
        with pytest.raises(ValueError):
            tb.register(gris, giis, transport="carrier-pigeon")

    def test_datagram_transport_registers(self):
        tb = GridTestbed(seed=1)
        giis = tb.add_giis("g", "o=A")
        gris = tb.standard_gris("r", "hn=r, o=A")
        tb.register(gris, giis, transport="datagram", interval=10.0, ttl=30.0)
        tb.run(1.0)
        assert len(giis.backend.registry) == 1

    def test_stop_registrations(self):
        tb = GridTestbed(seed=1)
        giis = tb.add_giis("g", "o=A")
        gris = tb.standard_gris("r", "hn=r, o=A")
        tb.register(gris, giis, interval=5.0, ttl=15.0)
        tb.run(1.0)
        gris.stop_registrations()
        tb.run(60.0)
        assert len(giis.backend.registry) == 0
