"""Repository-wide quality gates and cross-implementation checks."""

import importlib
import pathlib
import pkgutil

import pytest
from hypothesis import given, settings, strategies as st

import repro


def _all_modules():
    root = pathlib.Path(repro.__file__).parent
    names = ["repro"]
    for info in pkgutil.walk_packages([str(root)], prefix="repro."):
        names.append(info.name)
    return names


class TestDocumentation:
    @pytest.mark.parametrize("name", _all_modules())
    def test_every_module_has_a_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"

    def test_public_classes_documented(self):
        undocumented = []
        for name in _all_modules():
            module = importlib.import_module(name)
            for attr in getattr(module, "__all__", []):
                obj = getattr(module, attr, None)
                if isinstance(obj, type) and obj.__module__ == name:
                    if not (obj.__doc__ and obj.__doc__.strip()):
                        undocumented.append(f"{name}.{attr}")
        assert not undocumented, f"undocumented public classes: {undocumented}"


class TestServerFilteringMatchesLocalSemantics:
    """Cross-check: entries a server returns for a filter are exactly
    the entries whose full content matches the filter locally."""

    @given(
        st.sampled_from(
            [
                "(objectclass=computer)",
                "(load5<=3.0)",
                "(&(objectclass=computer)(cpucount>=4))",
                "(|(system=*irix*)(system=*linux*))",
                "(!(load5>=2.0))",
                "(hn=host00*)",
                "(cpucount~=8)",
            ]
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_wire_results_equal_local_filtering(self, filter_text):
        from repro.ldap.backend import DitBackend
        from repro.ldap.client import LdapClient
        from repro.ldap.dit import DIT, Scope
        from repro.ldap.dn import DN
        from repro.ldap.entry import Entry
        from repro.ldap.filter import parse as parse_filter
        from repro.ldap.server import LdapServer
        from repro.net.sim import Simulator
        from repro.net.simnet import SimNetwork

        dit = DIT()
        for i in range(12):
            host = f"host{i:03d}"
            dit.add(
                Entry(
                    f"hn={host}",
                    objectclass="computer",
                    hn=host,
                    system="linux" if i % 2 else "mips irix",
                    cpucount=1 << (i % 4),
                    load5=f"{i / 4:.1f}",
                )
            )
        sim = Simulator()
        net = SimNetwork(sim)
        net.add_node("s").listen(
            389, LdapServer(DitBackend(dit), clock=sim).handle_connection
        )
        client = LdapClient(net.add_node("u").connect(("s", 389)), driver=sim.step)
        over_wire = {
            str(e.dn) for e in client.search("", Scope.SUBTREE, filter_text)
        }
        filt = parse_filter(filter_text)
        local = {
            str(e.dn)
            for e in dit.search(DN.root(), Scope.SUBTREE)
            if filt.matches(e)
        }
        assert over_wire == local


class TestGiisCachePreservesStamps:
    def test_cached_entries_keep_original_timestamps(self):
        """Query-cache hits serve the originally-stamped data, so
        consumers can still judge currency (§2.1/§3)."""
        from repro.testbed import GridTestbed

        tb = GridTestbed(seed=95)
        giis = tb.add_giis("giis", "o=Grid", cache_ttl=300.0)
        gris = tb.standard_gris("r0", "hn=r0, o=Grid", load_ttl=5.0)
        tb.register(gris, giis, name="r0")
        tb.run(1.0)
        client = tb.client("u", giis)
        first = client.search("o=Grid", filter="(objectclass=loadaverage)")
        stamp0 = first.entries[0].timestamp()
        tb.run(60.0)
        again = client.search("o=Grid", filter="(objectclass=loadaverage)")
        assert giis.backend.stats_cache_hits >= 1
        assert again.entries[0].timestamp() == stamp0  # honest staleness
        # the consumer can detect it is stale relative to the TTL
        assert again.entries[0].is_stale(tb.sim.now())
